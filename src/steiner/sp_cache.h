#ifndef Q_STEINER_SP_CACHE_H_
#define Q_STEINER_SP_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/csr.h"

namespace q::steiner {

// One terminal's single-source shortest-path tree over a CsrGraph under an
// overlay (forced edges traversed at cost 0, banned edges removed).
// `pred_edge[v]` is the first arc to achieve v's final distance under a
// canonical attempt order: nodes expand in (dist, id) order (the DaryHeap
// pops ties by id) and each node's arcs are scanned in fixed CSR order.
// That makes the whole structure a pure function of the overlayed costs —
// independent of push/decrease history — which the reuse rule below
// relies on.
// The search terminates as soon as every requested terminal is settled;
// nodes left unsettled are wiped back to (inf, invalid), so the stored
// arrays are again a canonical prefix of the full run. `settled[v]` marks
// the nodes whose dist/pred are final.
struct SpTree {
  std::vector<double> dist;
  std::vector<std::uint32_t> pred_node;
  std::vector<graph::EdgeId> pred_edge;
  std::vector<std::uint8_t> settled;
  // Sorted unique set of edges used as some settled node's predecessor.
  std::vector<graph::EdgeId> tree_edges;
  // The settled nodes — exactly the entries of dist/pred_*/settled that
  // differ from their (inf, invalid, 0) defaults. ComputeSpTree resets a
  // reused SpTree through this list instead of reinitializing the full
  // arrays, which keeps per-solve cost proportional to the neighborhood
  // the search actually explored rather than to the graph (the arrays
  // only pay O(num_nodes) once, when the object first grows).
  std::vector<std::uint32_t> touched;
  // True when the search ran to exhaustion (every reachable node settled);
  // such trees can seed the exact DP's singleton slices.
  bool complete = false;
  // Masked runs only: the cheapest offer (settled distance + arc cost)
  // the search declined because the arc's head fell outside the mask —
  // +inf when nothing was clipped (or the run was unmasked). Any path
  // escaping the mask costs at least this much, so every settled value
  // strictly below it is provably identical to the unmasked run's; the
  // masked solvers verify their reads against it (see fast_solver.h).
  double mask_min_clip = std::numeric_limits<double>::infinity();
};

// Cross-subproblem cache of per-terminal Dijkstra trees, keyed on the
// terminal plus the overlay signature it was computed under. Lawler
// enumeration produces long chains of subproblems that differ by one
// banned edge; an entry computed under (F1, B1) answers a query for
// (F2, B2) exactly when the edit set provably cannot change the result:
//
//   * every edge in F1 xor F2 has base cost 0 (forcing an edge that is
//     already free, or un-forcing one, changes neither the cost function
//     nor the arc set, so nothing changes), and
//   * B1 is a subset of B2 and every edge in B2 \ B1 is absent from the
//     cached tree. Removing a non-tree edge e cannot change any distance
//     (the predecessor chains are e-free witnesses of every dist value),
//     so the canonical expansion order is unchanged; and e cannot be any
//     settled node's first achieving arc in that order (it would be the
//     predecessor, i.e. a tree edge), so dropping it changes no
//     predecessor either.
//
// Because searches stop early, a valid entry must additionally have
// settled every terminal the caller needs (`required` below); different
// settled extents never change the values actually read, since settled
// prefixes of the same canonical run agree wherever both are settled.
//
// Entries are immutable after insertion and returned by shared_ptr, so
// concurrent solvers can hold results while other threads insert. Because
// any valid entry is byte-identical to a fresh computation, cache state
// (and therefore thread interleaving) can never change solver output.
//
// Entries are keyed by (generation, terminal): the generation names the
// cost snapshot the tree was computed under, so a cache that outlives one
// top-k enumeration (the RefreshEngine keeps one per view across
// refreshes) is invalidated wholesale by BumpGeneration() when the
// snapshot is re-costed — a lookup can never be served by a tree from an
// older weight vector. Within one generation entries stay valid
// indefinitely, which is what lets consecutive refreshes at the same
// generation reuse each other's Dijkstra trees.
//
// Thread safety: the entry map is sharded by key hash with a mutex per
// shard, and the hit/miss/size/generation counters are atomics, so any
// number of pinned solves may Lookup/Insert concurrently (the serving
// path runs many searches against one shared view engine). BumpGeneration
// may also run concurrently with pinned traffic — old-generation lookups
// and inserts racing the purge are harmless by the keying argument above.
// InvalidateRepriced keeps its stronger contract: no same-generation
// solve may be in flight (the engine guarantees this by holding its
// snapshot lock and bumping instead whenever the snapshot is pinned).
class ShortestPathCache {
 public:
  explicit ShortestPathCache(std::size_t max_entries = 1024)
      : max_entries_(max_entries) {}

  // Moves the cache to a new cost snapshot: generation() advances and
  // entries of older generations are purged (a current-generation lookup
  // could never match them — the generation is part of the key — so
  // dropping them reclaims their memory and capacity). Solves in flight
  // across a bump are safe as long as they pass the generation they
  // pinned: their lookups and inserts stay keyed under the old
  // generation, so an old-cost tree can never satisfy a new-generation
  // lookup (inserts after the purge linger as capacity-bounded garbage
  // until the next bump).
  void BumpGeneration();
  std::uint64_t generation() const;

  // Selective invalidation after a delta re-cost, the alternative to
  // BumpGeneration when only a few edges moved: keeps an entry iff no
  // repriced edge can change its tree under a conservative provable
  // rule — for every repriced edge e, at least one of
  //
  //   * e is in the entry's forced set (traversed at cost 0 regardless
  //     of its base cost, so the tree never read the old value), or
  //   * e is in the entry's banned set (excluded from traversal), or
  //   * e's cost strictly increased and e is not a tree edge: every
  //     settled distance keeps its e-free predecessor-chain witness,
  //     every offer through e only grows (so it can neither settle a new
  //     node earlier nor become a first-achieving arc), and the
  //     canonical expansion order — hence the settled prefix of an
  //     early-stopped run — is unchanged.
  //
  // A cost decrease anywhere outside forced/banned, or any change to a
  // tree edge, drops the entry. Surviving entries stay keyed under the
  // current generation and remain bitwise identical to fresh
  // computations under the new costs, so cache hits after a delta
  // re-cost still never change solver output. Unlike BumpGeneration this
  // re-judges current-generation entries under new costs, so callers must
  // not invalidate while a solve of the *same generation* is in flight —
  // FastSteinerEngine enforces this by bumping instead whenever its
  // snapshot is pinned. `retained`/`dropped` (optional) receive the
  // entry counts.
  void InvalidateRepriced(const std::vector<RepricedEdge>& repriced,
                          std::size_t* retained, std::size_t* dropped);

  // A valid cached tree for `terminal` under the (sorted) overlay sets
  // with every node of `required` settled, or nullptr. `edge_cost` is the
  // CSR base cost array used for the zero-cost forced-set rule.
  //
  // `generation` names the cost snapshot the caller is solving against —
  // normally generation(), but a solver holding a SnapshotPin passes the
  // generation captured at pin time, so a solve that outlives a
  // concurrent re-cost keeps hitting (and populating) only entries of its
  // own pinned costs and can never be served a tree from a different
  // snapshot (see FastSteinerEngine::Pin).
  std::shared_ptr<const SpTree> Lookup(
      std::uint64_t generation, std::uint32_t terminal,
      const std::vector<graph::EdgeId>& forced_sorted,
      const std::vector<graph::EdgeId>& banned_sorted,
      const std::vector<double>& edge_cost,
      const std::vector<std::uint32_t>& required, bool require_complete);

  // True while the cache still accepts inserts; lets callers skip
  // materializing entries that would be dropped anyway.
  bool HasRoom() const;

  // Registers a freshly computed tree for (terminal, forced, banned)
  // under `generation` (same pin rule as Lookup: a pinned solve inserts
  // under its pinned generation, so stale-cost trees can never satisfy
  // current-generation lookups). Drops the insert once `max_entries` is
  // reached (entries stay valid for the lifetime of their generation, so
  // eviction is not needed within one top-k enumeration, which is the
  // cache's scope).
  void Insert(std::uint64_t generation, std::uint32_t terminal,
              std::vector<graph::EdgeId> forced_sorted,
              std::vector<graph::EdgeId> banned_sorted,
              std::shared_ptr<const SpTree> tree);

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t size() const;

  // --- masked local-tree cache (mask-uid keyed) -------------------------
  //
  // Compacted masked solves store per-terminal Dijkstra trees whose
  // arrays are indexed by the mask's *local* ids (see shard.h). Such a
  // tree is meaningless under any other mask, so these entries are keyed
  // by the mask's process-unique uid instead of the cost generation: a
  // grown (escalated) mask gets a fresh uid and starts cold, and the uid
  // also names the cost snapshot (the compact view bakes the pinned arc
  // costs), so generation never enters the key. The overlay reuse rule is
  // the same as the global store's — edge ids in forced/banned/tree_edges
  // are global either way — with `required` given as local terminal ids.
  //
  // Clip caveat: a cached tree's mask_min_clip was recorded under the
  // entry's own banned set. Serving a superset-ban lookup can only
  // *understate* the fresh clip floor (banning a boundary arc removes a
  // clipped offer, never adds one), so certification against a served
  // clip is conservative — a solve may escalate where a fresh run would
  // certify, but a certified result is still exactly the unmasked one,
  // and solver *output* is unchanged (bounds never exceed true costs).
  //
  // Capacity is separate and small; local working sets live and die with
  // one enumeration. When full, the store is wholesale-cleared before the
  // insert — cheap, and each enumeration keeps its own hits.
  std::shared_ptr<const SpTree> LookupLocal(
      std::uint64_t mask_uid, std::uint32_t terminal,
      const std::vector<graph::EdgeId>& forced_sorted,
      const std::vector<graph::EdgeId>& banned_sorted,
      const std::vector<double>& edge_cost,
      const std::vector<std::uint32_t>& required_local, bool require_complete);
  void InsertLocal(std::uint64_t mask_uid, std::uint32_t terminal,
                   std::vector<graph::EdgeId> forced_sorted,
                   std::vector<graph::EdgeId> banned_sorted,
                   std::shared_ptr<const SpTree> tree);

  // Counts masked solves that ran with no cache at all (uncompacted
  // referee path); the observability gap that hid the compaction bug.
  void NoteMaskedBypass(std::size_t trees);

  std::size_t local_hits() const;
  std::size_t local_misses() const;
  std::size_t local_size() const;
  std::size_t masked_bypasses() const;

 private:
  struct Entry {
    std::vector<graph::EdgeId> forced;  // sorted
    std::vector<graph::EdgeId> banned;  // sorted
    std::shared_ptr<const SpTree> tree;
  };

  static bool Valid(const Entry& entry,
                    const std::vector<graph::EdgeId>& forced,
                    const std::vector<graph::EdgeId>& banned,
                    const std::vector<double>& edge_cost,
                    const std::vector<std::uint32_t>& required,
                    bool require_complete);

  // (generation << 32) | terminal. Terminals are node ids of one CSR
  // snapshot and stay well below 2^32; generations count re-costs.
  static std::uint64_t Key(std::uint64_t generation, std::uint32_t terminal) {
    return (generation << 32) | terminal;
  }

  // One lock + map per shard; keys spread by a Fibonacci-hash of the key
  // so concurrent searches over different terminals rarely contend.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Entry>> by_key;
  };
  static constexpr std::size_t kNumShards = 8;
  static std::size_t ShardIndex(std::uint64_t key) {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 61);
  }

  // (mask_uid << 32) | terminal, in a separate shard array so local and
  // global keys can never meet. Uids are process-monotone and stay far
  // below 2^32 in any realistic run.
  static std::uint64_t LocalKey(std::uint64_t mask_uid,
                                std::uint32_t terminal) {
    return (mask_uid << 32) | terminal;
  }

  std::size_t max_entries_;
  std::atomic<std::size_t> num_entries_{0};
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::array<Shard, kNumShards> shards_;

  std::size_t max_local_entries_ = 512;
  std::atomic<std::size_t> num_local_entries_{0};
  mutable std::atomic<std::size_t> local_hits_{0};
  mutable std::atomic<std::size_t> local_misses_{0};
  std::atomic<std::size_t> masked_bypasses_{0};
  std::array<Shard, kNumShards> local_shards_;
};

}  // namespace q::steiner

#endif  // Q_STEINER_SP_CACHE_H_
