#include "match/top_y_reveal.h"

#include <string>
#include <unordered_set>

namespace q::match {

util::Result<std::vector<AlignmentCandidate>> RevealTopYAlignments(
    Matcher* matcher, const relational::Table& existing,
    const relational::Table& incoming, const TopYRevealOptions& options) {
  // Top-1 alignments as the black box reports them.
  Q_ASSIGN_OR_RETURN(std::vector<AlignmentCandidate> top,
                     matcher->AlignPair(existing, incoming, 1));

  std::vector<AlignmentCandidate> all = top;
  for (const AlignmentCandidate& pair : top) {
    if (pair.confidence >= options.high_confidence) continue;
    // Probe for the next-best partner of each endpoint by suppressing the
    // other endpoint and re-running the pairwise alignment.
    for (int side = 0; side < 2; ++side) {
      const relational::AttributeId& suppressed =
          side == 0 ? pair.a : pair.b;
      const relational::AttributeId& kept = side == 0 ? pair.b : pair.a;
      std::string suppressed_key = suppressed.ToString();
      std::string kept_key = kept.ToString();
      matcher->set_pair_filter(
          [&suppressed_key, &kept_key](const relational::AttributeId& x,
                                       const relational::AttributeId& y) {
            // Remove the suppressed attribute entirely, and only look at
            // pairs involving the kept endpoint (we want *its* next-best).
            if (x.ToString() == suppressed_key ||
                y.ToString() == suppressed_key) {
              return false;
            }
            return x.ToString() == kept_key || y.ToString() == kept_key;
          });
      auto rerun = matcher->AlignPair(existing, incoming, 1);
      matcher->set_pair_filter(nullptr);
      Q_RETURN_NOT_OK(rerun.status());
      for (auto& alt : *rerun) all.push_back(std::move(alt));
      if (static_cast<int>(all.size()) >
          options.top_y * static_cast<int>(top.size()) * 2) {
        break;  // plenty of alternatives collected
      }
    }
  }
  return TopYPerAttribute(std::move(all), options.top_y);
}

}  // namespace q::match
