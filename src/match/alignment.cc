#include "match/alignment.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace q::match {

std::vector<AlignmentCandidate> TopYPerAttribute(
    std::vector<AlignmentCandidate> candidates, int top_y) {
  if (top_y <= 0) return {};
  // Deduplicate pairs first (max confidence wins).
  std::map<std::string, AlignmentCandidate> by_pair;
  for (auto& c : candidates) {
    std::string key = c.PairKey();
    auto it = by_pair.find(key);
    if (it == by_pair.end() || c.confidence > it->second.confidence) {
      by_pair[key] = std::move(c);
    }
  }
  // Bucket by endpoint.
  std::map<std::string, std::vector<const AlignmentCandidate*>> per_attr;
  for (const auto& [key, c] : by_pair) {
    per_attr[c.a.ToString()].push_back(&c);
    per_attr[c.b.ToString()].push_back(&c);
  }
  std::map<std::string, const AlignmentCandidate*> kept;
  for (auto& [attr, list] : per_attr) {
    std::sort(list.begin(), list.end(),
              [](const AlignmentCandidate* x, const AlignmentCandidate* y) {
                if (x->confidence != y->confidence) {
                  return x->confidence > y->confidence;
                }
                return x->PairKey() < y->PairKey();
              });
    for (std::size_t i = 0;
         i < list.size() && i < static_cast<std::size_t>(top_y); ++i) {
      kept.emplace(list[i]->PairKey(), list[i]);
    }
  }
  std::vector<AlignmentCandidate> out;
  out.reserve(kept.size());
  for (const auto& [key, c] : kept) out.push_back(*c);
  return out;
}

}  // namespace q::match
