#ifndef Q_MATCH_MAD_H_
#define Q_MATCH_MAD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace q::match {

// Hyperparameters of Modified Adsorption (Algorithm 1; defaults are the
// paper's Sec. 5.2.1 settings: 3 iterations, mu1 = mu2 = 1, mu3 = 1e-2).
struct MadConfig {
  double mu1 = 1.0;  // injection term
  double mu2 = 1.0;  // neighborhood agreement term
  double mu3 = 1e-2; // abandonment / prior (dummy label) term
  int max_iterations = 3;
  // Early stop when the max L-inf change of any node's distribution drops
  // below this (0 disables; the paper runs a fixed iteration count).
  double tolerance = 0.0;
  // Beta of the entropy-based random-walk probability heuristic
  // (Talukdar & Crammer 2009).
  double beta = 2.0;
  // Sparsity cap: labels kept per node between iterations.
  std::size_t max_labels_per_node = 32;
};

// Label index type. Label 0 is reserved for the "none of the above" dummy
// label (the paper's top mark); real labels start at 1.
using MadLabel = std::uint32_t;
inline constexpr MadLabel kDummyLabel = 0;

// Sparse label distribution: (label, score) sorted by label.
using LabelDist = std::vector<std::pair<MadLabel, double>>;

// Undirected weighted graph over which labels are propagated. Nodes are
// created via GetOrAddNode (deduplicated by key); seed nodes carry their
// own injected label.
class LabelPropGraph {
 public:
  std::uint32_t GetOrAddNode(const std::string& key);
  bool HasNode(const std::string& key) const {
    return index_.count(key) > 0;
  }
  std::uint32_t NodeOf(const std::string& key) const {
    return index_.at(key);
  }

  void AddEdge(std::uint32_t a, std::uint32_t b, double weight);

  // Seeds node `n` with label `l` (score 1.0). A node may carry one seed.
  void SetSeed(std::uint32_t n, MadLabel l);

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return edge_count_; }
  std::size_t degree(std::uint32_t n) const { return adjacency_[n].size(); }

  const std::vector<std::pair<std::uint32_t, double>>& neighbors(
      std::uint32_t n) const {
    return adjacency_[n];
  }
  bool IsSeeded(std::uint32_t n) const { return seed_[n] != kNoSeed; }
  MadLabel SeedOf(std::uint32_t n) const { return seed_[n]; }

 private:
  static constexpr MadLabel kNoSeed = ~MadLabel{0};
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency_;
  std::vector<MadLabel> seed_;
  std::size_t edge_count_ = 0;
};

struct MadResult {
  // Per node: converged label distribution (dummy label included).
  std::vector<LabelDist> labels;
  int iterations_run = 0;
  double final_max_change = 0.0;
};

// Runs the MAD fixpoint (Algorithm 1). Note on line 4 of the published
// pseudocode: we propagate the *current estimates* L_u of the neighbors
// (per the cited MAD paper and the random-walk semantics), not the seed
// labels I_u; see DESIGN.md.
MadResult RunMad(const LabelPropGraph& graph, const MadConfig& config);

}  // namespace q::match

#endif  // Q_MATCH_MAD_H_
