#ifndef Q_MATCH_TOP_Y_REVEAL_H_
#define Q_MATCH_TOP_Y_REVEAL_H_

#include <vector>

#include "match/matcher.h"

namespace q::match {

struct TopYRevealOptions {
  // Alignments at or above this confidence are trusted outright and not
  // probed for alternatives (Sec. 3.2.3: "unless the top alignment has
  // very high confidence").
  double high_confidence = 0.9;
  // Number of alternatives to reveal per attribute (the paper's Y,
  // "typically 2 or 3").
  int top_y = 2;
};

// The Sec. 3.2.3 procedure for forcing a pairwise black-box matcher that
// only reports its top alignment to reveal its top-Y overall alignments:
// compute the top alignment between the pair; then, for each alignment
// pair (A, B) without high confidence, suppress A and re-run to find the
// "next best" alignment with B, then suppress B and repeat. Suppression
// is implemented through the matcher's pair filter, so any Matcher works
// unmodified. The matcher's previous pair filter is restored on return.
util::Result<std::vector<AlignmentCandidate>> RevealTopYAlignments(
    Matcher* matcher, const relational::Table& existing,
    const relational::Table& incoming, const TopYRevealOptions& options);

}  // namespace q::match

#endif  // Q_MATCH_TOP_Y_REVEAL_H_
