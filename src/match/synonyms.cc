#include "match/synonyms.h"

namespace q::match {

SynonymDictionary SynonymDictionary::Default() {
  SynonymDictionary dict;
  // Database-schema abbreviations common in bioinformatics sources.
  dict.Add("pub", "publication");
  dict.Add("acc", "accession");
  dict.Add("ac", "accession");
  dict.Add("id", "identifier");
  dict.Add("num", "number");
  dict.Add("no", "number");
  dict.Add("desc", "description");
  dict.Add("defn", "definition");
  dict.Add("def", "definition");
  dict.Add("ref", "reference");
  dict.Add("db", "database");
  dict.Add("seq", "sequence");
  dict.Add("expr", "expression");
  dict.Add("exp", "experiment");
  dict.Add("abbrev", "abbreviation");
  dict.Add("vol", "volume");
  dict.Add("jrnl", "journal");
  dict.Add("auth", "author");
  dict.Add("org", "organism");
  dict.Add("chrom", "chromosome");
  dict.Add("pos", "position");
  dict.Add("val", "value");
  dict.Add("qty", "quantity");
  dict.Add("meas", "measurement");
  return dict;
}

void SynonymDictionary::Add(std::string abbreviation, std::string canonical) {
  map_[std::move(abbreviation)] = std::move(canonical);
}

const std::string& SynonymDictionary::Canonical(
    const std::string& token) const {
  auto it = map_.find(token);
  return it == map_.end() ? token : it->second;
}

std::vector<std::string> SynonymDictionary::Normalize(
    std::vector<std::string> tokens) const {
  for (auto& t : tokens) t = Canonical(t);
  return tokens;
}

}  // namespace q::match
