#include "match/metadata_matcher.h"

#include <algorithm>

#include "util/string_util.h"

namespace q::match {
namespace {

double NameSimilarity(const SynonymDictionary& dict, std::string_view a,
                      std::string_view b) {
  auto ta = dict.Normalize(util::TokenizeIdentifier(a));
  auto tb = dict.Normalize(util::TokenizeIdentifier(b));
  std::string ja = util::Join(ta, " ");
  std::string jb = util::Join(tb, " ");
  double token = util::TokenJaccard(ta, tb);
  double edit = util::EditSimilarity(ja, jb);
  double trigram = util::TrigramSimilarity(ja, jb);
  return std::max({token, edit, trigram});
}

}  // namespace

double MetadataMatcher::ScorePair(const relational::RelationSchema& schema_a,
                                  std::size_t attr_a,
                                  const relational::RelationSchema& schema_b,
                                  std::size_t attr_b) const {
  const auto& def_a = schema_a.attributes()[attr_a];
  const auto& def_b = schema_b.attributes()[attr_b];

  double name = NameSimilarity(synonyms_, def_a.name, def_b.name);
  double substring = util::SubstringSimilarity(def_a.name, def_b.name);
  double structure =
      NameSimilarity(synonyms_, schema_a.relation(), schema_b.relation());
  double type = def_a.type == def_b.type ? 1.0 : 0.2;

  double score = config_.name_weight * name +
                 config_.substring_weight * substring +
                 config_.structure_weight * structure +
                 config_.type_weight * type;
  double total = config_.name_weight + config_.substring_weight +
                 config_.structure_weight + config_.type_weight;
  return total > 0 ? score / total : 0.0;
}

util::Result<std::vector<AlignmentCandidate>> MetadataMatcher::AlignPair(
    const relational::Table& existing, const relational::Table& incoming,
    int top_y) {
  CountPairAlignment();
  const auto& sa = existing.schema();
  const auto& sb = incoming.schema();
  std::vector<AlignmentCandidate> all;
  for (std::size_t i = 0; i < sa.num_attributes(); ++i) {
    for (std::size_t j = 0; j < sb.num_attributes(); ++j) {
      relational::AttributeId ida = sa.IdOf(i);
      relational::AttributeId idb = sb.IdOf(j);
      if (!PassesFilter(ida, idb)) continue;
      CountComparison();
      double score = ScorePair(sa, i, sb, j);
      if (score < config_.min_confidence) continue;
      all.push_back(AlignmentCandidate{std::move(ida), std::move(idb), score,
                                       std::string(name())});
    }
  }
  return TopYPerAttribute(std::move(all), top_y);
}

}  // namespace q::match
