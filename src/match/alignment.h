#ifndef Q_MATCH_ALIGNMENT_H_
#define Q_MATCH_ALIGNMENT_H_

#include <string>
#include <vector>

#include "relational/schema.h"

namespace q::match {

// One proposed attribute alignment with the proposing matcher's
// confidence in [0, 1]. Undirected: (a, b) == (b, a).
struct AlignmentCandidate {
  relational::AttributeId a;
  relational::AttributeId b;
  double confidence = 0.0;
  std::string matcher;

  // Canonical "<lesser-id>|<greater-id>" key for dedup across directions.
  std::string PairKey() const {
    std::string sa = a.ToString();
    std::string sb = b.ToString();
    return sa < sb ? sa + "|" + sb : sb + "|" + sa;
  }
};

// Keeps, for every attribute mentioned by `candidates`, its top-Y
// candidates by confidence (an edge survives if it is in the top-Y list of
// either endpoint, matching Sec. 5.2's "top-Y edges per node"), then
// deduplicates pairs keeping max confidence. Deterministic tie-breaking.
std::vector<AlignmentCandidate> TopYPerAttribute(
    std::vector<AlignmentCandidate> candidates, int top_y);

}  // namespace q::match

#endif  // Q_MATCH_ALIGNMENT_H_
