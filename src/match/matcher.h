#ifndef Q_MATCH_MATCHER_H_
#define Q_MATCH_MATCHER_H_

#include <functional>
#include <string_view>
#include <vector>

#include "match/alignment.h"
#include "relational/table.h"
#include "util/result.h"

namespace q::match {

// Optional predicate applied before scoring an attribute pair; the
// value-overlap filter of Sec. 5.1 plugs in here. Pairs failing the filter
// are neither scored nor counted as comparisons.
using PairFilter = std::function<bool(const relational::AttributeId&,
                                      const relational::AttributeId&)>;

struct MatcherStats {
  // Attribute pairs actually scored (the paper's "pairwise attribute /
  // column comparisons", Figs. 7-8).
  std::size_t attribute_comparisons = 0;
  // AlignPair invocations (relation pairs).
  std::size_t pair_alignments = 0;
};

// The paper's pluggable "black box" alignment primitive (Sec. 3.2): given
// relations, propose attribute alignments with confidences in [0, 1]. Q
// never looks inside a matcher; it only consumes (pair, confidence) plus
// comparison counts.
class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual std::string_view name() const = 0;

  // Pairwise mode (how COMA++ is driven in Sec. 3.2.3): aligns attributes
  // of `existing` and `incoming`, returning up to top_y candidates per
  // attribute of either relation.
  virtual util::Result<std::vector<AlignmentCandidate>> AlignPair(
      const relational::Table& existing, const relational::Table& incoming,
      int top_y) = 0;

  // Global mode (how MAD runs in Sec. 3.2.2): induce top-Y candidate
  // alignments per attribute across the whole table set. The default runs
  // AlignPair over every unordered relation pair.
  virtual util::Result<std::vector<AlignmentCandidate>> InduceAlignments(
      const std::vector<const relational::Table*>& tables, int top_y);

  void set_pair_filter(PairFilter filter) { filter_ = std::move(filter); }

  const MatcherStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MatcherStats{}; }

 protected:
  bool PassesFilter(const relational::AttributeId& a,
                    const relational::AttributeId& b) const {
    return !filter_ || filter_(a, b);
  }
  void CountComparison() { ++stats_.attribute_comparisons; }
  void CountPairAlignment() { ++stats_.pair_alignments; }

 private:
  PairFilter filter_;
  MatcherStats stats_;
};

// A matcher that scores nothing and proposes nothing but counts the
// attribute comparisons a real pairwise matcher would perform. Used by the
// scaling experiments (Fig. 8), where the paper likewise reports
// comparison counts instead of running COMA++ on synthetic relations.
class CountingMatcher final : public Matcher {
 public:
  std::string_view name() const override { return "counting"; }

  util::Result<std::vector<AlignmentCandidate>> AlignPair(
      const relational::Table& existing, const relational::Table& incoming,
      int top_y) override;
};

}  // namespace q::match

#endif  // Q_MATCH_MATCHER_H_
