#include "match/mad_matcher.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace q::match {
namespace {

struct AttributeEntry {
  relational::AttributeId id;
  const relational::Table* table;
  std::size_t column;
};

}  // namespace

const MadMatcher::TableValueCache& MadMatcher::CachedValues(
    const relational::Table& table) {
  const std::string key = table.schema().QualifiedName();
  auto it = value_cache_.find(key);
  if (it != value_cache_.end() && it->second.rows == table.rows().size()) {
    ++last_run_.value_cache_hits;
    return it->second;
  }
  TableValueCache cache;
  cache.rows = table.rows().size();
  cache.columns.resize(table.schema().num_attributes());
  for (std::size_t c = 0; c < table.schema().num_attributes(); ++c) {
    std::unordered_set<std::string> seen;
    for (const auto& row : table.rows()) {
      const relational::Value& v = row[c];
      if (v.is_null()) continue;
      std::string text = v.ToText();
      if (text.empty()) continue;
      if (config_.drop_numeric_values && util::IsNumericLiteral(text)) {
        continue;
      }
      // Mirrors the historical scan exactly, cap semantics included: the
      // cap+1-th distinct value trips the break without being kept.
      if (!seen.insert(text).second) continue;
      if (config_.max_values_per_attribute > 0 &&
          seen.size() > config_.max_values_per_attribute) {
        break;
      }
      cache.columns[c].push_back(std::move(text));
    }
  }
  for (const auto& col : cache.columns) {
    cache.sorted_values.insert(cache.sorted_values.end(), col.begin(),
                               col.end());
  }
  std::sort(cache.sorted_values.begin(), cache.sorted_values.end());
  cache.sorted_values.erase(
      std::unique(cache.sorted_values.begin(), cache.sorted_values.end()),
      cache.sorted_values.end());
  return value_cache_.insert_or_assign(key, std::move(cache)).first->second;
}

util::Result<std::vector<AlignmentCandidate>> MadMatcher::InduceAlignments(
    const std::vector<const relational::Table*>& tables, int top_y) {
  // --- Collect attributes (one MAD label each) ---------------------------
  std::vector<AttributeEntry> attrs;
  for (const relational::Table* t : tables) {
    for (std::size_t c = 0; c < t->schema().num_attributes(); ++c) {
      attrs.push_back(AttributeEntry{t->schema().IdOf(c), t, c});
    }
  }

  // --- Gather distinct value texts per attribute -------------------------
  // value text -> set of attribute indices containing it. Replayed from
  // the per-table cache: `attrs` is laid out table-major, so walking
  // tables and columns in order issues the exact value_attrs insertion
  // sequence the original per-row scan did (bit-identical map order).
  std::unordered_map<std::string, std::vector<std::size_t>> value_attrs;
  {
    std::size_t a = 0;
    for (const relational::Table* t : tables) {
      const TableValueCache& cache = CachedValues(*t);
      for (std::size_t c = 0; c < t->schema().num_attributes(); ++c, ++a) {
        for (const std::string& text : cache.columns[c]) {
          value_attrs[text].push_back(a);
        }
      }
    }
  }

  // --- Build the column-value graph --------------------------------------
  LabelPropGraph graph;
  std::vector<std::uint32_t> attr_node(attrs.size());
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    attr_node[a] = graph.GetOrAddNode("a:" + attrs[a].id.ToString());
    // Label id = attribute index + 1 (0 is the dummy label).
    graph.SetSeed(attr_node[a], static_cast<MadLabel>(a + 1));
  }
  for (const auto& [text, owners] : value_attrs) {
    if (config_.prune_degree_one && owners.size() < 2) continue;
    std::uint32_t vnode = graph.GetOrAddNode("v:" + text);
    for (std::size_t a : owners) {
      graph.AddEdge(attr_node[a], vnode, 1.0);
    }
  }

  // --- Propagate ----------------------------------------------------------
  MadResult mad = RunMad(graph, config_.mad);
  last_run_.graph_nodes = graph.num_nodes();
  last_run_.graph_edges = graph.num_edges();
  last_run_.iterations = mad.iterations_run;

  // --- Read alignments off attribute nodes --------------------------------
  std::vector<AlignmentCandidate> candidates;
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    const LabelDist& dist = mad.labels[attr_node[a]];
    for (const auto& [label, score] : dist) {
      if (label == kDummyLabel) continue;
      std::size_t other = static_cast<std::size_t>(label) - 1;
      if (other == a) continue;
      if (score < config_.min_confidence) continue;
      double confidence = std::clamp(score, 0.0, 1.0);
      candidates.push_back(AlignmentCandidate{
          attrs[a].id, attrs[other].id, confidence, std::string(name())});
    }
  }
  return TopYPerAttribute(std::move(candidates), top_y);
}

util::Result<std::vector<AlignmentCandidate>> MadMatcher::AlignPair(
    const relational::Table& existing, const relational::Table& incoming,
    int top_y) {
  CountPairAlignment();
  // Overlap early-exit: with no shared value text between the tables,
  // every value node's owners live in one relation, so the attribute-
  // value graph has no path between the two relations' components and
  // propagation cannot move label mass across them — the cross-relation
  // output below is provably empty. Skip the propagation entirely.
  // (References into value_cache_ are stable across the second lookup.)
  const TableValueCache& lhs = CachedValues(existing);
  const TableValueCache& rhs = CachedValues(incoming);
  bool overlap = false;
  for (std::size_t i = 0, j = 0;
       i < lhs.sorted_values.size() && j < rhs.sorted_values.size();) {
    int cmp = lhs.sorted_values[i].compare(rhs.sorted_values[j]);
    if (cmp == 0) {
      overlap = true;
      break;
    }
    (cmp < 0 ? i : j)++;
  }
  if (!overlap) {
    ++last_run_.pairs_skipped_no_overlap;
    return std::vector<AlignmentCandidate>{};
  }
  // MAD needs no pairwise attribute comparisons (Sec. 3.2.2), so no
  // comparison counting here: the propagation is global over both tables.
  std::vector<const relational::Table*> pair{&existing, &incoming};
  Q_ASSIGN_OR_RETURN(std::vector<AlignmentCandidate> all,
                     InduceAlignments(pair, top_y));
  // Keep only cross-relation alignments in pairwise mode.
  std::vector<AlignmentCandidate> out;
  for (auto& c : all) {
    if (c.a.RelationQualifiedName() != c.b.RelationQualifiedName()) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace q::match
