#include "match/mad_matcher.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace q::match {
namespace {

struct AttributeEntry {
  relational::AttributeId id;
  const relational::Table* table;
  std::size_t column;
};

}  // namespace

util::Result<std::vector<AlignmentCandidate>> MadMatcher::InduceAlignments(
    const std::vector<const relational::Table*>& tables, int top_y) {
  // --- Collect attributes (one MAD label each) ---------------------------
  std::vector<AttributeEntry> attrs;
  for (const relational::Table* t : tables) {
    for (std::size_t c = 0; c < t->schema().num_attributes(); ++c) {
      attrs.push_back(AttributeEntry{t->schema().IdOf(c), t, c});
    }
  }

  // --- Gather distinct value texts per attribute -------------------------
  // value text -> set of attribute indices containing it
  std::unordered_map<std::string, std::vector<std::size_t>> value_attrs;
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    std::unordered_set<std::string> seen;
    for (const auto& row : attrs[a].table->rows()) {
      const relational::Value& v = row[attrs[a].column];
      if (v.is_null()) continue;
      std::string text = v.ToText();
      if (text.empty()) continue;
      if (config_.drop_numeric_values && util::IsNumericLiteral(text)) {
        continue;
      }
      if (!seen.insert(text).second) continue;
      if (config_.max_values_per_attribute > 0 &&
          seen.size() > config_.max_values_per_attribute) {
        break;
      }
      value_attrs[text].push_back(a);
    }
  }

  // --- Build the column-value graph --------------------------------------
  LabelPropGraph graph;
  std::vector<std::uint32_t> attr_node(attrs.size());
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    attr_node[a] = graph.GetOrAddNode("a:" + attrs[a].id.ToString());
    // Label id = attribute index + 1 (0 is the dummy label).
    graph.SetSeed(attr_node[a], static_cast<MadLabel>(a + 1));
  }
  for (const auto& [text, owners] : value_attrs) {
    if (config_.prune_degree_one && owners.size() < 2) continue;
    std::uint32_t vnode = graph.GetOrAddNode("v:" + text);
    for (std::size_t a : owners) {
      graph.AddEdge(attr_node[a], vnode, 1.0);
    }
  }

  // --- Propagate ----------------------------------------------------------
  MadResult mad = RunMad(graph, config_.mad);
  last_run_.graph_nodes = graph.num_nodes();
  last_run_.graph_edges = graph.num_edges();
  last_run_.iterations = mad.iterations_run;

  // --- Read alignments off attribute nodes --------------------------------
  std::vector<AlignmentCandidate> candidates;
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    const LabelDist& dist = mad.labels[attr_node[a]];
    for (const auto& [label, score] : dist) {
      if (label == kDummyLabel) continue;
      std::size_t other = static_cast<std::size_t>(label) - 1;
      if (other == a) continue;
      if (score < config_.min_confidence) continue;
      double confidence = std::clamp(score, 0.0, 1.0);
      candidates.push_back(AlignmentCandidate{
          attrs[a].id, attrs[other].id, confidence, std::string(name())});
    }
  }
  return TopYPerAttribute(std::move(candidates), top_y);
}

util::Result<std::vector<AlignmentCandidate>> MadMatcher::AlignPair(
    const relational::Table& existing, const relational::Table& incoming,
    int top_y) {
  CountPairAlignment();
  // MAD needs no pairwise attribute comparisons (Sec. 3.2.2), so no
  // comparison counting here: the propagation is global over both tables.
  std::vector<const relational::Table*> pair{&existing, &incoming};
  Q_ASSIGN_OR_RETURN(std::vector<AlignmentCandidate> all,
                     InduceAlignments(pair, top_y));
  // Keep only cross-relation alignments in pairwise mode.
  std::vector<AlignmentCandidate> out;
  for (auto& c : all) {
    if (c.a.RelationQualifiedName() != c.b.RelationQualifiedName()) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace q::match
