#ifndef Q_MATCH_MAD_MATCHER_H_
#define Q_MATCH_MAD_MATCHER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "match/mad.h"
#include "match/matcher.h"

namespace q::match {

struct MadMatcherConfig {
  MadConfig mad;
  // Value nodes appearing under a single attribute are dropped before
  // propagation (Sec. 5.2.1: "all nodes with degree one were pruned").
  bool prune_degree_one = true;
  // Numeric values are dropped (Sec. 5.2.1: "likely to induce spurious
  // associations").
  bool drop_numeric_values = true;
  // Candidates with MAD score below this are ignored.
  double min_confidence = 1e-4;
  // Optional cap on distinct values per attribute fed into the graph
  // (0 = all); keeps the graph laptop-sized on large tables.
  std::size_t max_values_per_attribute = 0;
};

// The paper's novel instance-based matcher (Sec. 3.2.2): builds a
// column-value graph (one node per attribute labeled with itself, one node
// per distinct value text shared across attributes), runs Modified
// Adsorption, and reads alignments off each attribute node's converged
// label distribution. Exploits transitive value overlap without any
// pairwise source comparison.
class MadMatcher final : public Matcher {
 public:
  explicit MadMatcher(MadMatcherConfig config = MadMatcherConfig())
      : config_(config) {}

  std::string_view name() const override { return "mad"; }

  // Pairwise mode runs the propagation over just the two relations.
  util::Result<std::vector<AlignmentCandidate>> AlignPair(
      const relational::Table& existing, const relational::Table& incoming,
      int top_y) override;

  // Global mode: one propagation over the whole table set (how the paper
  // evaluates MAD in Sec. 5.2).
  util::Result<std::vector<AlignmentCandidate>> InduceAlignments(
      const std::vector<const relational::Table*>& tables,
      int top_y) override;

  // Statistics of the last propagation run (graph size, iterations),
  // plus two cumulative counters for the streaming-onboarding fast path.
  struct RunInfo {
    std::size_t graph_nodes = 0;
    std::size_t graph_edges = 0;
    int iterations = 0;
    // Cumulative: tables whose distinct-value extraction was served from
    // the per-table cache instead of a full row scan.
    std::size_t value_cache_hits = 0;
    // Cumulative: AlignPair calls short-circuited because the two tables
    // share no value text — the attribute-value graph is disconnected
    // across them, so propagation cannot move any label mass between the
    // relations and the cross-relation output is provably empty.
    std::size_t pairs_skipped_no_overlap = 0;
  };
  const RunInfo& last_run() const { return last_run_; }

 private:
  // Distinct-value extraction cache. Onboarding a source re-aligns it
  // against every existing view context, and each AlignPair used to
  // re-scan both tables' rows; with the cache a table is scanned once
  // per row-count (tables are append-only, so the count identifies the
  // content). Keyed by the relation's qualified name.
  struct TableValueCache {
    std::size_t rows = 0;
    // Per column: distinct filtered value texts in first-seen row order.
    // Replaying these reproduces the original row-scan loop
    // bit-identically — same value->attribute insertion order, same
    // per-value owner order — so cached and uncached runs build the
    // exact same propagation graph.
    std::vector<std::vector<std::string>> columns;
    // Union of all columns' values, sorted and deduped, for the
    // AlignPair cross-table overlap early-exit.
    std::vector<std::string> sorted_values;
  };

  // Returns the cache entry for `table`, rebuilding it if the row count
  // moved. The returned reference stays valid across later calls
  // (unordered_map never moves its elements).
  const TableValueCache& CachedValues(const relational::Table& table);

  MadMatcherConfig config_;
  RunInfo last_run_;
  std::unordered_map<std::string, TableValueCache> value_cache_;
};

}  // namespace q::match

#endif  // Q_MATCH_MAD_MATCHER_H_
