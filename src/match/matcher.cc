#include "match/matcher.h"

namespace q::match {

util::Result<std::vector<AlignmentCandidate>> Matcher::InduceAlignments(
    const std::vector<const relational::Table*>& tables, int top_y) {
  std::vector<AlignmentCandidate> all;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    for (std::size_t j = i + 1; j < tables.size(); ++j) {
      Q_ASSIGN_OR_RETURN(std::vector<AlignmentCandidate> pair_result,
                         AlignPair(*tables[i], *tables[j], top_y));
      for (auto& c : pair_result) all.push_back(std::move(c));
    }
  }
  return TopYPerAttribute(std::move(all), top_y);
}

util::Result<std::vector<AlignmentCandidate>> CountingMatcher::AlignPair(
    const relational::Table& existing, const relational::Table& incoming,
    int top_y) {
  (void)top_y;
  CountPairAlignment();
  const auto& sa = existing.schema();
  const auto& sb = incoming.schema();
  for (std::size_t i = 0; i < sa.num_attributes(); ++i) {
    for (std::size_t j = 0; j < sb.num_attributes(); ++j) {
      if (!PassesFilter(sa.IdOf(i), sb.IdOf(j))) continue;
      CountComparison();
    }
  }
  return std::vector<AlignmentCandidate>{};
}

}  // namespace q::match
