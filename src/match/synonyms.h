#ifndef Q_MATCH_SYNONYMS_H_
#define Q_MATCH_SYNONYMS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace q::match {

// Abbreviation/synonym dictionary mapping short identifier tokens to a
// canonical long form (the paper's "Standard abbrevs" table in Fig. 2,
// e.g. pub -> publication). Used by the metadata matcher to normalize
// tokens before comparison.
class SynonymDictionary {
 public:
  // Loaded with the built-in bioinformatics/database abbreviations.
  static SynonymDictionary Default();

  // Empty dictionary.
  SynonymDictionary() = default;

  void Add(std::string abbreviation, std::string canonical);

  // Canonical form of a token (the token itself when unmapped).
  const std::string& Canonical(const std::string& token) const;

  // Canonicalizes every token in place.
  std::vector<std::string> Normalize(std::vector<std::string> tokens) const;

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace q::match

#endif  // Q_MATCH_SYNONYMS_H_
