#ifndef Q_MATCH_METADATA_MATCHER_H_
#define Q_MATCH_METADATA_MATCHER_H_

#include <string_view>
#include <vector>

#include "match/matcher.h"
#include "match/synonyms.h"

namespace q::match {

struct MetadataMatcherConfig {
  // Weights of the component scores (renormalized over the components
  // actually present); mirrors COMA++'s default combination of name-,
  // structure- and datatype-level sub-matchers over metadata.
  double name_weight = 0.55;
  double substring_weight = 0.15;
  double structure_weight = 0.15;
  double type_weight = 0.15;
  // Candidates below this confidence are dropped. The structural and
  // type components alone contribute up to ~0.35 for entirely unrelated
  // attributes, so the floor sits above that noise level.
  double min_confidence = 0.45;
};

// Metadata-only schema matcher standing in for the COMA++ 2008 Java API
// (see DESIGN.md substitutions). It scores attribute pairs from schema
// information alone — tokenized names (with abbreviation expansion, edit
// distance, and trigram similarity), substring overlap, the owning
// relations' name similarity (structural context), and declared-type
// compatibility — and never looks at instances, reproducing COMA++'s
// metadata-mode behavior in the paper's experiments (footnote 1).
class MetadataMatcher final : public Matcher {
 public:
  explicit MetadataMatcher(
      MetadataMatcherConfig config = MetadataMatcherConfig(),
      SynonymDictionary synonyms = SynonymDictionary::Default())
      : config_(config), synonyms_(std::move(synonyms)) {}

  std::string_view name() const override { return "metadata"; }

  util::Result<std::vector<AlignmentCandidate>> AlignPair(
      const relational::Table& existing, const relational::Table& incoming,
      int top_y) override;

  // Exposed for tests: the raw pair score in [0, 1].
  double ScorePair(const relational::RelationSchema& schema_a,
                   std::size_t attr_a,
                   const relational::RelationSchema& schema_b,
                   std::size_t attr_b) const;

 private:
  MetadataMatcherConfig config_;
  SynonymDictionary synonyms_;
};

}  // namespace q::match

#endif  // Q_MATCH_METADATA_MATCHER_H_
