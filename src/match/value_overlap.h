#ifndef Q_MATCH_VALUE_OVERLAP_H_
#define Q_MATCH_VALUE_OVERLAP_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "match/matcher.h"
#include "relational/table.h"

namespace q::match {

// Content index over attribute value sets, backing the "Value Overlap
// Filter" of Fig. 7: only attribute pairs that share at least
// `min_overlap` distinct values are worth comparing (a join needs shared
// values to produce results).
class ValueOverlapIndex {
 public:
  void IndexTable(const relational::Table& table);

  // Distinct shared non-null value texts between two indexed attributes;
  // 0 when either is unindexed.
  std::size_t Overlap(const relational::AttributeId& a,
                      const relational::AttributeId& b) const;

  bool CanJoin(const relational::AttributeId& a,
               const relational::AttributeId& b,
               std::size_t min_overlap = 1) const {
    return Overlap(a, b) >= min_overlap;
  }

  // Adapter usable as Matcher::set_pair_filter.
  PairFilter MakeFilter(std::size_t min_overlap = 1) const;

  std::size_t num_attributes() const { return values_.size(); }

 private:
  std::unordered_map<std::string, std::unordered_set<std::string>> values_;
};

}  // namespace q::match

#endif  // Q_MATCH_VALUE_OVERLAP_H_
