#include "match/value_overlap.h"

namespace q::match {

void ValueOverlapIndex::IndexTable(const relational::Table& table) {
  const auto& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    auto& set = values_[schema.IdOf(c).ToString()];
    for (const auto& row : table.rows()) {
      if (row[c].is_null()) continue;
      std::string text = row[c].ToText();
      if (!text.empty()) set.insert(std::move(text));
    }
  }
}

std::size_t ValueOverlapIndex::Overlap(const relational::AttributeId& a,
                                       const relational::AttributeId& b) const {
  auto ia = values_.find(a.ToString());
  auto ib = values_.find(b.ToString());
  if (ia == values_.end() || ib == values_.end()) return 0;
  const auto* small = &ia->second;
  const auto* large = &ib->second;
  if (small->size() > large->size()) std::swap(small, large);
  std::size_t n = 0;
  for (const auto& v : *small) {
    if (large->count(v) > 0) ++n;
  }
  return n;
}

PairFilter ValueOverlapIndex::MakeFilter(std::size_t min_overlap) const {
  return [this, min_overlap](const relational::AttributeId& a,
                             const relational::AttributeId& b) {
    return CanJoin(a, b, min_overlap);
  };
}

}  // namespace q::match
