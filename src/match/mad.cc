#include "match/mad.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace q::match {
namespace {

// Sparse vector helpers. Distributions are sorted by label id.

// `*into += from * scale`, merging through `*scratch` so the propagation
// loop reuses one buffer instead of materializing a fresh vector per
// sparse add (the dominant allocation churn of RunMad).
void AddScaled(LabelDist* into, const LabelDist& from, double scale,
               LabelDist* scratch) {
  if (scale == 0.0 || from.empty()) return;
  if (into->empty()) {
    into->reserve(from.size());
    for (const auto& [label, score] : from) {
      into->emplace_back(label, score * scale);
    }
    return;
  }
  LabelDist& merged = *scratch;
  merged.clear();
  merged.reserve(into->size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into->size() || j < from.size()) {
    if (j == from.size() ||
        (i < into->size() && (*into)[i].first < from[j].first)) {
      merged.push_back((*into)[i++]);
    } else if (i == into->size() || from[j].first < (*into)[i].first) {
      merged.emplace_back(from[j].first, from[j].second * scale);
      ++j;
    } else {
      merged.emplace_back((*into)[i].first,
                          (*into)[i].second + from[j].second * scale);
      ++i;
      ++j;
    }
  }
  into->swap(merged);
}

void Truncate(LabelDist* dist, std::size_t max_labels) {
  if (dist->size() <= max_labels) return;
  // Keep the highest-scoring labels; restore label order afterwards.
  std::sort(dist->begin(), dist->end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  dist->resize(max_labels);
  std::sort(dist->begin(), dist->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

double MaxAbsDiff(const LabelDist& a, const LabelDist& b) {
  double max_diff = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      max_diff = std::max(max_diff, std::fabs(a[i++].second));
    } else if (i == a.size() || b[j].first < a[i].first) {
      max_diff = std::max(max_diff, std::fabs(b[j++].second));
    } else {
      max_diff = std::max(max_diff, std::fabs(a[i].second - b[j].second));
      ++i;
      ++j;
    }
  }
  return max_diff;
}

}  // namespace

std::uint32_t LabelPropGraph::GetOrAddNode(const std::string& key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(adjacency_.size());
  index_.emplace(key, id);
  adjacency_.emplace_back();
  seed_.push_back(kNoSeed);
  return id;
}

void LabelPropGraph::AddEdge(std::uint32_t a, std::uint32_t b,
                             double weight) {
  Q_CHECK(a < adjacency_.size() && b < adjacency_.size() && a != b);
  adjacency_[a].emplace_back(b, weight);
  adjacency_[b].emplace_back(a, weight);
  ++edge_count_;
}

void LabelPropGraph::SetSeed(std::uint32_t n, MadLabel l) {
  Q_CHECK(n < seed_.size());
  seed_[n] = l;
}

MadResult RunMad(const LabelPropGraph& graph, const MadConfig& config) {
  const std::size_t n = graph.num_nodes();
  MadResult result;
  result.labels.assign(n, {});
  if (n == 0) return result;

  // --- Random-walk probabilities via the entropy heuristic --------------
  std::vector<double> p_inj(n, 0.0);
  std::vector<double> p_cont(n, 0.0);
  std::vector<double> p_abnd(n, 0.0);
  std::vector<double> weight_sum(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    double total = 0.0;
    for (const auto& [u, w] : graph.neighbors(v)) total += w;
    weight_sum[v] = total;
    double entropy = 0.0;
    if (total > 0.0) {
      for (const auto& [u, w] : graph.neighbors(v)) {
        double p = w / total;
        if (p > 0.0) entropy -= p * std::log(p);
      }
    }
    double c = std::log(config.beta) /
               std::log(config.beta + std::exp(entropy));
    double d = graph.IsSeeded(v) ? (1.0 - c) * std::sqrt(entropy) : 0.0;
    double z = std::max(c + d, 1.0);
    p_cont[v] = c / z;
    p_inj[v] = d / z;
    p_abnd[v] = std::max(0.0, 1.0 - p_cont[v] - p_inj[v]);
  }

  // --- Seeds and priors ---------------------------------------------------
  std::vector<LabelDist> seeds(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (graph.IsSeeded(v)) {
      seeds[v] = LabelDist{{graph.SeedOf(v), 1.0}};
    }
    result.labels[v] = seeds[v];  // L_v <- I_v (Algorithm 1 line 1)
  }
  // R_v: single peak on the dummy label.
  const LabelDist dummy_prior{{kDummyLabel, 1.0}};

  // --- M_vv (Algorithm 1 line 2) -----------------------------------------
  std::vector<double> m(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    m[v] = config.mu1 * p_inj[v] + config.mu2 * p_cont[v] * weight_sum[v] +
           config.mu3;
  }

  // --- Fixpoint iterations ------------------------------------------------
  std::vector<LabelDist> next(n);
  // Buffers owned by the loop: `next[v].swap(updated)` recycles the slot's
  // previous allocation, so steady-state iterations allocate nothing.
  LabelDist d_v;
  LabelDist updated;
  LabelDist scratch;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      d_v.clear();
      for (const auto& [u, w] : graph.neighbors(v)) {
        double coeff = p_cont[v] * w + p_cont[u] * w;
        AddScaled(&d_v, result.labels[u], coeff, &scratch);
      }
      updated.clear();
      AddScaled(&updated, seeds[v], config.mu1 * p_inj[v], &scratch);
      AddScaled(&updated, d_v, config.mu2, &scratch);
      AddScaled(&updated, dummy_prior, config.mu3 * p_abnd[v], &scratch);
      if (m[v] > 0.0) {
        for (auto& [label, score] : updated) score /= m[v];
      }
      Truncate(&updated, config.max_labels_per_node);
      max_change = std::max(max_change, MaxAbsDiff(updated, result.labels[v]));
      next[v].swap(updated);
    }
    result.labels.swap(next);
    result.iterations_run = iter + 1;
    result.final_max_change = max_change;
    if (config.tolerance > 0.0 && max_change < config.tolerance) break;
  }
  return result;
}

}  // namespace q::match
