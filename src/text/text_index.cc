#include "text/text_index.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace q::text {
namespace {

std::vector<std::string> TokensFor(DocKind kind, std::string_view text) {
  // Identifiers get camelCase/snake splitting; values get plain word
  // tokenization.
  if (kind == DocKind::kValue) return util::TokenizeText(text);
  return util::TokenizeIdentifier(text);
}

}  // namespace

void TextIndex::IndexCatalog(const relational::Catalog& catalog) {
  for (const auto& table : catalog.AllTables()) IndexTable(*table);
}

void TextIndex::IndexTable(const relational::Table& table) {
  const relational::RelationSchema& schema = table.schema();
  AddDocument(Document{
      DocKind::kRelationName,
      relational::AttributeId{schema.source(), schema.relation(), ""},
      schema.relation()});
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    AddDocument(Document{DocKind::kAttributeName, schema.IdOf(c),
                         schema.attributes()[c].name});
  }
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    for (const relational::Value& v : table.DistinctValues(c)) {
      std::string text = v.ToText();
      if (text.empty()) continue;
      relational::AttributeId id = schema.IdOf(c);
      std::string key = id.ToString() + "\x1f" + text;
      if (value_doc_keys_.count(key) > 0) continue;
      value_doc_keys_[key] = docs_.size();
      AddDocument(Document{DocKind::kValue, std::move(id), std::move(text)});
    }
  }
}

void TextIndex::AddDocument(Document doc) {
  std::size_t index = docs_.size();
  std::unordered_map<std::string, double> tf;
  for (const std::string& token : TokensFor(doc.kind, doc.text)) {
    tf[token] += 1.0;
  }
  for (const auto& [token, count] : tf) {
    postings_[token].push_back(Posting{index, count});
  }
  docs_.push_back(std::move(doc));
  norms_dirty_ = true;
}

double TextIndex::Idf(const std::string& token) const {
  auto it = postings_.find(token);
  std::size_t df = it == postings_.end() ? 0 : it->second.size();
  // Smoothed idf; always positive.
  return std::log(1.0 + static_cast<double>(docs_.size()) /
                            (1.0 + static_cast<double>(df)));
}

void TextIndex::RecomputeNormsIfNeeded() const {
  if (!norms_dirty_) return;
  auto* self = const_cast<TextIndex*>(this);
  self->doc_norms_.assign(docs_.size(), 0.0);
  for (const auto& [token, plist] : postings_) {
    double idf = Idf(token);
    for (const Posting& p : plist) {
      double w = p.tf * idf;
      self->doc_norms_[p.doc_index] += w * w;
    }
  }
  for (double& n : self->doc_norms_) n = std::sqrt(n);
  self->norms_dirty_ = false;
}

std::vector<ScoredDoc> TextIndex::Search(std::string_view keyword,
                                         double min_score,
                                         std::size_t max_results) const {
  RecomputeNormsIfNeeded();
  std::unordered_map<std::string, double> query_tf;
  for (const std::string& token : util::TokenizeText(keyword)) {
    query_tf[token] += 1.0;
  }
  if (query_tf.empty()) return {};

  double query_norm = 0.0;
  std::unordered_map<std::size_t, double> dot;  // doc -> accumulated dot
  for (const auto& [token, tf] : query_tf) {
    double idf = Idf(token);
    double qw = tf * idf;
    query_norm += qw * qw;
    auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      dot[p.doc_index] += qw * (p.tf * idf);
    }
  }
  query_norm = std::sqrt(query_norm);
  if (query_norm == 0.0) return {};

  std::vector<ScoredDoc> results;
  results.reserve(dot.size());
  for (const auto& [doc_index, d] : dot) {
    double denom = query_norm * doc_norms_[doc_index];
    if (denom <= 0.0) continue;
    double score = d / denom;
    if (score >= min_score) results.push_back(ScoredDoc{doc_index, score});
  }
  std::sort(results.begin(), results.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_index < b.doc_index;
            });
  if (max_results > 0 && results.size() > max_results) {
    results.resize(max_results);
  }
  return results;
}

}  // namespace q::text
