#ifndef Q_TEXT_TEXT_INDEX_H_
#define Q_TEXT_TEXT_INDEX_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/catalog.h"
#include "relational/schema.h"

namespace q::text {

enum class DocKind {
  kRelationName = 0,  // metadata: the relation's name
  kAttributeName = 1, // metadata: an attribute's name
  kValue = 2,         // data: one distinct value of one attribute
};

// One indexed unit. For kRelationName, `attr.attribute` is empty.
struct Document {
  DocKind kind;
  relational::AttributeId attr;
  std::string text;  // the raw name or value text
};

struct ScoredDoc {
  std::size_t doc_index;
  double score;  // cosine tf-idf similarity in [0, 1]
};

// TF-IDF inverted index over schema elements and pre-indexed data values
// (Sec. 2.2: keywords are matched "against all schema elements and all
// pre-indexed data values in the data sources"). Identifier documents are
// tokenized with camelCase/snake_case splitting so the keyword "go term"
// matches attribute "go_term".
class TextIndex {
 public:
  // Indexes every relation name, attribute name, and distinct non-null
  // value of every table currently in `catalog`.
  void IndexCatalog(const relational::Catalog& catalog);

  // Indexes one table (used when a new source is registered after the
  // initial build).
  void IndexTable(const relational::Table& table);

  const std::vector<Document>& documents() const { return docs_; }

  // Top matches for a (possibly multi-token) keyword, best first, with
  // score >= min_score. `max_results` of 0 means unlimited.
  std::vector<ScoredDoc> Search(std::string_view keyword, double min_score,
                                std::size_t max_results) const;

  std::size_t num_documents() const { return docs_.size(); }

 private:
  struct Posting {
    std::size_t doc_index;
    double tf;  // raw term frequency within the document
  };

  void AddDocument(Document doc);

  double Idf(const std::string& token) const;

  std::vector<Document> docs_;
  std::vector<double> doc_norms_;  // lazily recomputed tf-idf norms
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  // Deduplicates kValue docs on (attribute, text).
  std::unordered_map<std::string, std::size_t> value_doc_keys_;
  mutable bool norms_dirty_ = true;

  void RecomputeNormsIfNeeded() const;
};

}  // namespace q::text

#endif  // Q_TEXT_TEXT_INDEX_H_
