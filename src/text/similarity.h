#ifndef Q_TEXT_SIMILARITY_H_
#define Q_TEXT_SIMILARITY_H_

#include <memory>
#include <string>
#include <string_view>

namespace q::text {

// Pluggable pairwise string similarity in [0, 1] (Sec. 2.2: the keyword
// similarity metric is tf-idf by default "although other metrics such as
// edit distance or n-grams could be used").
class StringSimilarity {
 public:
  virtual ~StringSimilarity() = default;
  virtual std::string_view name() const = 0;
  virtual double Score(std::string_view a, std::string_view b) const = 0;
};

// Normalized Levenshtein similarity.
class EditDistanceSimilarity final : public StringSimilarity {
 public:
  std::string_view name() const override { return "edit_distance"; }
  double Score(std::string_view a, std::string_view b) const override;
};

// Character trigram Jaccard similarity.
class NGramSimilarity final : public StringSimilarity {
 public:
  std::string_view name() const override { return "ngram"; }
  double Score(std::string_view a, std::string_view b) const override;
};

// Token-set Jaccard with identifier-aware tokenization (snake/camel).
class TokenJaccardSimilarity final : public StringSimilarity {
 public:
  std::string_view name() const override { return "token_jaccard"; }
  double Score(std::string_view a, std::string_view b) const override;
};

// Factory by name ("edit_distance" | "ngram" | "token_jaccard").
std::unique_ptr<StringSimilarity> MakeSimilarity(std::string_view name);

}  // namespace q::text

#endif  // Q_TEXT_SIMILARITY_H_
