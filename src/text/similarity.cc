#include "text/similarity.h"

#include "util/string_util.h"

namespace q::text {

double EditDistanceSimilarity::Score(std::string_view a,
                                     std::string_view b) const {
  return util::EditSimilarity(util::ToLower(a), util::ToLower(b));
}

double NGramSimilarity::Score(std::string_view a, std::string_view b) const {
  return util::TrigramSimilarity(a, b);
}

double TokenJaccardSimilarity::Score(std::string_view a,
                                     std::string_view b) const {
  return util::TokenJaccard(util::TokenizeIdentifier(a),
                            util::TokenizeIdentifier(b));
}

std::unique_ptr<StringSimilarity> MakeSimilarity(std::string_view name) {
  if (name == "edit_distance") {
    return std::make_unique<EditDistanceSimilarity>();
  }
  if (name == "ngram") return std::make_unique<NGramSimilarity>();
  if (name == "token_jaccard") {
    return std::make_unique<TokenJaccardSimilarity>();
  }
  return nullptr;
}

}  // namespace q::text
