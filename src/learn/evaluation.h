#ifndef Q_LEARN_EVALUATION_H_
#define Q_LEARN_EVALUATION_H_

#include <string>
#include <vector>

#include "graph/search_graph.h"
#include "match/alignment.h"
#include "relational/schema.h"
#include "util/stats.h"

namespace q::learn {

// One undirected gold-standard alignment edge (Fig. 9's semantically
// meaningful join/alignment edges).
struct GoldEdge {
  relational::AttributeId a;
  relational::AttributeId b;

  std::string PairKey() const {
    std::string sa = a.ToString();
    std::string sb = b.ToString();
    return sa < sb ? sa + "|" + sb : sb + "|" + sa;
  }
};

struct PrPoint {
  double threshold = 0.0;  // cost (edges <= threshold kept) or confidence
  double precision = 0.0;
  double recall = 0.0;
};

// P/R/F of a candidate set against gold (Table 1's strict definition:
// a candidate is correct iff its unordered pair is in the gold set).
util::PrecisionRecall EvaluateCandidates(
    const std::vector<match::AlignmentCandidate>& candidates,
    const std::vector<GoldEdge>& gold);

// P/R of the search graph's association edges kept under a cost
// threshold.
util::PrecisionRecall EvaluateGraphAssociations(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<GoldEdge>& gold, double cost_threshold);

// Precision-recall curve over the graph's association edges, sweeping the
// cost threshold through every distinct edge cost (ascending), as in
// Figs. 10-11.
std::vector<PrPoint> GraphPrCurve(const graph::SearchGraph& graph,
                                  const graph::WeightVector& weights,
                                  const std::vector<GoldEdge>& gold);

// Precision-recall curve over matcher candidates, sweeping confidence
// descending.
std::vector<PrPoint> CandidatePrCurve(
    const std::vector<match::AlignmentCandidate>& candidates,
    const std::vector<GoldEdge>& gold);

// Average cost of gold vs non-gold association edges (Fig. 12 series).
struct GoldCostGap {
  double gold_mean = 0.0;
  double non_gold_mean = 0.0;
  std::size_t gold_edges = 0;
  std::size_t non_gold_edges = 0;
};
GoldCostGap MeasureGoldCostGap(const graph::SearchGraph& graph,
                               const graph::WeightVector& weights,
                               const std::vector<GoldEdge>& gold);

}  // namespace q::learn

#endif  // Q_LEARN_EVALUATION_H_
