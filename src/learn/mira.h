#ifndef Q_LEARN_MIRA_H_
#define Q_LEARN_MIRA_H_

#include <vector>

#include "graph/search_graph.h"
#include "steiner/steiner_tree.h"
#include "steiner/top_k.h"
#include "util/status.h"

namespace q::learn {

struct MiraConfig {
  // k of KBESTSTEINER in Algorithm 4.
  int k = 5;
  steiner::TopKConfig top_k;  // k field below overrides top_k.k
  // Hildreth dual-ascent passes and convergence tolerance for the QP
  //   min ||w - w_prev||^2  s.t.  C(T,w) - C(T_r,w) >= L(T_r,T).
  int max_hildreth_passes = 100;
  double hildreth_tolerance = 1e-9;
  // After each update, every learnable edge must cost at least this much
  // (the positivity constraint of Algorithm 4).
  double positivity_epsilon = 1e-4;
  bool enforce_positivity = true;
  // How positivity is maintained: edges driven below the floor enter the
  // same Hildreth QP as the margin constraints — one constraint
  // w · f(e) >= epsilon per violating edge, riding that edge's own
  // features — re-solved jointly with the margins, for at most this many
  // add-violators-and-resolve rounds. The legacy alternative (raise the
  // shared default feature until the minimum clears the floor) is kept
  // only as a last-resort fallback: the default feature sits on *every*
  // learnable edge, so a bump turns an otherwise-sparse MIRA delta dense
  // — snapshot holders must re-cost every view wholesale and the
  // relevance gate can never skip (the repriced set hits every
  // certificate). Constraint-based flooring keeps the journal delta on
  // the handful of features the update actually touched.
  int max_positivity_rounds = 4;
  // Exclude the shared default feature from the constraint vectors. The
  // default weight is the uniform positivity offset, not a discriminative
  // feature: letting MIRA move it interacts badly with the positivity
  // bump whenever the target and alternative trees differ in edge count
  // (the update lowers it, the bump restores it, and the constraint is
  // re-violated on replay — a ratchet that inflates every edge cost
  // without converging).
  bool freeze_default_feature = true;
};

// Outcome of one online update, for instrumentation and for the delta
// refresh pipeline: the revision span tells snapshot holders where to
// start reading the WeightVector's FeatureDelta journal, and
// `feature_deltas` is the update's own coalesced change set (one entry
// per feature with net movement — the handful of features on the
// endorsed and competing trees, not the whole space).
struct MiraUpdateInfo {
  std::size_t constraints = 0;
  std::size_t violated_before = 0;
  std::size_t violated_after = 0;
  // Edges whose positivity floor entered the QP as constraints.
  std::size_t positivity_constraints = 0;
  // Nonzero only when the constraint-based flooring could not restore
  // positivity and the dense fallback fired (see MiraConfig).
  double default_weight_bump = 0.0;
  // Weight revision observed before / after the update.
  std::uint64_t weight_revision_before = 0;
  std::uint64_t weight_revision_after = 0;
  // Coalesced net changes of this update (empty when the journal was
  // truncated mid-update; features_touched is then still exact 0 only if
  // the revision did not move).
  std::vector<graph::FeatureDelta> feature_deltas;
  // Distinct features with net movement; == feature_deltas.size() when
  // the journal covered the update.
  std::size_t features_touched = 0;
};

// The association-cost learner (Sec. 4, Algorithm 4): a Margin Infused
// Relaxed Algorithm variant over Steiner trees. Each user interaction
// yields a target tree T_r (the answer the user endorsed); the update
// minimally moves the weight vector so every tree in the current k-best
// list costs at least L(T_r, T) more than T_r, where L is the symmetric
// edge-set loss (Eq. 2). The zero-cost edge set A is honored structurally:
// such edges carry no features, so no weight setting can change them.
class MiraLearner {
 public:
  explicit MiraLearner(MiraConfig config = MiraConfig()) : config_(config) {}

  const MiraConfig& config() const { return config_; }

  // One pass of the Algorithm 4 loop body: retrieves the k-best trees for
  // `terminals` under the current weights and updates `weights` in place.
  util::Result<MiraUpdateInfo> Update(
      const graph::SearchGraph& query_graph,
      const std::vector<graph::NodeId>& terminals,
      const steiner::SteinerTree& target, graph::WeightVector* weights);

  // Update against an explicit alternative list (used when the caller
  // already computed the k-best trees, or for ranking feedback "T_r above
  // T" with a custom alternative set).
  util::Result<MiraUpdateInfo> UpdateAgainst(
      const graph::SearchGraph& query_graph,
      const std::vector<steiner::SteinerTree>& alternatives,
      const steiner::SteinerTree& target, graph::WeightVector* weights);

 private:
  MiraConfig config_;
};

}  // namespace q::learn

#endif  // Q_LEARN_MIRA_H_
