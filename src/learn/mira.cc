#include "learn/mira.h"

#include <algorithm>
#include <cmath>

namespace q::learn {
namespace {

struct Constraint {
  graph::FeatureVec x;  // f(T) - f(T_r): require w . x >= loss
  double loss = 0.0;
  double x_norm_sq = 0.0;
  double tau = 0.0;  // dual variable
};

}  // namespace

util::Result<MiraUpdateInfo> MiraLearner::Update(
    const graph::SearchGraph& query_graph,
    const std::vector<graph::NodeId>& terminals,
    const steiner::SteinerTree& target, graph::WeightVector* weights) {
  steiner::TopKConfig topk = config_.top_k;
  topk.k = config_.k;
  std::vector<steiner::SteinerTree> best =
      steiner::TopKSteinerTrees(query_graph, *weights, terminals, topk);
  return UpdateAgainst(query_graph, best, target, weights);
}

util::Result<MiraUpdateInfo> MiraLearner::UpdateAgainst(
    const graph::SearchGraph& query_graph,
    const std::vector<steiner::SteinerTree>& alternatives,
    const steiner::SteinerTree& target, graph::WeightVector* weights) {
  MiraUpdateInfo info;
  info.weight_revision_before = weights->revision();
  graph::FeatureVec target_features =
      steiner::TreeFeatures(query_graph, target);

  std::vector<Constraint> constraints;
  for (const steiner::SteinerTree& tree : alternatives) {
    double loss = steiner::SymmetricEdgeLoss(target, tree);
    if (loss == 0.0) continue;  // T_r itself: trivially satisfied
    Constraint c;
    c.x = steiner::TreeFeatures(query_graph, tree);
    c.x.AddScaled(target_features, -1.0);
    if (config_.freeze_default_feature) {
      c.x.Remove(graph::FeatureSpace::kDefaultFeature);
    }
    c.loss = loss;
    for (const auto& [id, v] : c.x.entries()) c.x_norm_sq += v * v;
    if (c.x_norm_sq <= 0.0) continue;  // identical feature vectors
    constraints.push_back(std::move(c));
  }
  info.constraints = constraints.size();
  for (const Constraint& c : constraints) {
    if (weights->Dot(c.x) < c.loss) ++info.violated_before;
  }

  // Hildreth's algorithm: cyclic dual coordinate ascent. w is kept
  // implicitly via the weight vector itself (w = w_prev + sum tau_i x_i).
  auto run_hildreth = [&]() {
    for (int pass = 0; pass < config_.max_hildreth_passes; ++pass) {
      double max_adjust = 0.0;
      for (Constraint& c : constraints) {
        double violation = c.loss - weights->Dot(c.x);
        double delta = violation / c.x_norm_sq;
        double new_tau = std::max(0.0, c.tau + delta);
        double applied = new_tau - c.tau;
        if (applied != 0.0) {
          for (const auto& [id, v] : c.x.entries()) {
            weights->Nudge(id, applied * v);
          }
          c.tau = new_tau;
          max_adjust = std::max(max_adjust, std::fabs(applied));
        }
      }
      if (max_adjust < config_.hildreth_tolerance) break;
    }
  };
  run_hildreth();
  const std::size_t margin_constraints = constraints.size();

  // Positivity: every learnable edge cost must stay at least epsilon.
  // Edges the margin pass drove below the floor enter the same QP as
  // constraints over their *own* features (w · f(e) >= epsilon) and the
  // combined system is re-solved, so the restoring movement rides the
  // violating edges' features — not the shared default feature, whose
  // bump would turn this update's otherwise-sparse journal delta dense
  // (full re-costs everywhere, no relevance gating downstream). Each
  // round may push new edges under the floor; iterate a few times.
  if (config_.enforce_positivity) {
    std::vector<char> floored(query_graph.num_edges(), 0);
    for (int round = 0; round < config_.max_positivity_rounds; ++round) {
      bool added = false;
      for (graph::EdgeId e = 0; e < query_graph.num_edges(); ++e) {
        const graph::EdgeView edge = query_graph.edge(e);
        if (edge.fixed_zero || floored[e]) continue;
        if (weights->Dot(edge.features()) >= config_.positivity_epsilon) {
          continue;
        }
        Constraint c;
        c.x = edge.features();
        double fixed = 0.0;
        if (config_.freeze_default_feature) {
          double dv = c.x.ValueOf(graph::FeatureSpace::kDefaultFeature);
          if (dv != 0.0) {
            // The frozen default's contribution is a constant during the
            // update; fold it into the bound.
            c.x.Remove(graph::FeatureSpace::kDefaultFeature);
            fixed = weights->At(graph::FeatureSpace::kDefaultFeature) * dv;
          }
        }
        c.loss = config_.positivity_epsilon - fixed;
        for (const auto& [id, v] : c.x.entries()) c.x_norm_sq += v * v;
        if (c.x_norm_sq <= 0.0) continue;  // default-only edge: fallback
        floored[e] = 1;
        ++info.positivity_constraints;
        constraints.push_back(std::move(c));
        added = true;
      }
      if (!added) break;
      run_hildreth();
    }

    // Last-resort fallback for what constraints cannot fix (an edge whose
    // only feature is the frozen default, or non-convergence within the
    // round budget): the legacy uniform offset. The trigger slack is
    // scaled from the Hildreth tolerance (converged constraints leave a
    // residual of at most tolerance * x_norm_sq, and feature counts per
    // edge are single digits), so a constraint-floored edge resting
    // within solver tolerance of epsilon never fires a dense bump, while
    // any genuine shortfall — round budget exhausted, unfixable edge —
    // still restores the full floor.
    const double slack = 100.0 * config_.hildreth_tolerance;
    double min_cost = std::numeric_limits<double>::infinity();
    for (graph::EdgeId e = 0; e < query_graph.num_edges(); ++e) {
      const graph::EdgeView edge = query_graph.edge(e);
      if (edge.fixed_zero) continue;
      min_cost = std::min(min_cost, weights->Dot(edge.features()));
    }
    if (min_cost < config_.positivity_epsilon - slack &&
        min_cost != std::numeric_limits<double>::infinity()) {
      double bump = config_.positivity_epsilon - min_cost;
      weights->Nudge(graph::FeatureSpace::kDefaultFeature, bump);
      info.default_weight_bump = bump;
    }
  }

  for (std::size_t i = 0; i < margin_constraints; ++i) {
    if (weights->Dot(constraints[i].x) < constraints[i].loss - 1e-6) {
      ++info.violated_after;
    }
  }

  // Delta summary: read this update's slice of the weight journal and
  // coalesce it to the net per-feature movement. The journal can only be
  // truncated here if the update alone overflowed it, in which case the
  // touched set is approximated by the union of constraint features.
  info.weight_revision_after = weights->revision();
  if (weights->DeltaSince(info.weight_revision_before,
                          &info.feature_deltas)) {
    graph::CoalesceFeatureDeltas(&info.feature_deltas);
    info.features_touched = info.feature_deltas.size();
  } else {
    std::vector<graph::FeatureId> touched;
    for (const Constraint& c : constraints) {
      for (const auto& [id, v] : c.x.entries()) touched.push_back(id);
    }
    if (info.default_weight_bump != 0.0) {
      touched.push_back(graph::FeatureSpace::kDefaultFeature);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    info.features_touched = touched.size();
  }
  return info;
}

}  // namespace q::learn
