#include "learn/evaluation.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace q::learn {
namespace {

std::unordered_set<std::string> GoldKeys(const std::vector<GoldEdge>& gold) {
  std::unordered_set<std::string> keys;
  for (const GoldEdge& g : gold) keys.insert(g.PairKey());
  return keys;
}

std::string AssociationKey(const graph::SearchGraph& graph,
                           const graph::EdgeView& e) {
  std::string sa = graph.node(e.u).label;
  std::string sb = graph.node(e.v).label;
  return sa < sb ? sa + "|" + sb : sb + "|" + sa;
}

}  // namespace

util::PrecisionRecall EvaluateCandidates(
    const std::vector<match::AlignmentCandidate>& candidates,
    const std::vector<GoldEdge>& gold) {
  auto gold_keys = GoldKeys(gold);
  util::PrecisionRecall pr;
  pr.gold = gold.size();
  std::set<std::string> seen;
  for (const auto& c : candidates) {
    if (!seen.insert(c.PairKey()).second) continue;
    ++pr.predicted;
    if (gold_keys.count(c.PairKey()) > 0) ++pr.true_positives;
  }
  return pr;
}

util::PrecisionRecall EvaluateGraphAssociations(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<GoldEdge>& gold, double cost_threshold) {
  auto gold_keys = GoldKeys(gold);
  util::PrecisionRecall pr;
  pr.gold = gold.size();
  std::set<std::string> seen;
  for (graph::EdgeId e : graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    if (graph.EdgeCost(e, weights) > cost_threshold) continue;
    std::string key = AssociationKey(graph, graph.edge(e));
    if (!seen.insert(key).second) continue;
    ++pr.predicted;
    if (gold_keys.count(key) > 0) ++pr.true_positives;
  }
  return pr;
}

std::vector<PrPoint> GraphPrCurve(const graph::SearchGraph& graph,
                                  const graph::WeightVector& weights,
                                  const std::vector<GoldEdge>& gold) {
  auto gold_keys = GoldKeys(gold);
  struct Entry {
    double cost;
    std::string key;
  };
  std::vector<Entry> entries;
  std::set<std::string> dedupe;
  for (graph::EdgeId e : graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    std::string key = AssociationKey(graph, graph.edge(e));
    if (!dedupe.insert(key).second) continue;
    entries.push_back(Entry{graph.EdgeCost(e, weights), std::move(key)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.key < b.key;
  });
  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (gold_keys.count(entries[i].key) > 0) ++tp;
    // Emit a point after each group of equal costs.
    if (i + 1 < entries.size() && entries[i + 1].cost == entries[i].cost) {
      continue;
    }
    PrPoint p;
    p.threshold = entries[i].cost;
    p.precision = static_cast<double>(tp) / static_cast<double>(i + 1);
    p.recall = gold.empty() ? 0.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(gold.size());
    curve.push_back(p);
  }
  return curve;
}

std::vector<PrPoint> CandidatePrCurve(
    const std::vector<match::AlignmentCandidate>& candidates,
    const std::vector<GoldEdge>& gold) {
  auto gold_keys = GoldKeys(gold);
  // Deduplicate pairs keeping max confidence.
  std::map<std::string, double> by_pair;
  for (const auto& c : candidates) {
    auto [it, inserted] = by_pair.emplace(c.PairKey(), c.confidence);
    if (!inserted) it->second = std::max(it->second, c.confidence);
  }
  struct Entry {
    double confidence;
    std::string key;
  };
  std::vector<Entry> entries;
  for (const auto& [key, conf] : by_pair) {
    entries.push_back(Entry{conf, key});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    return a.key < b.key;
  });
  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (gold_keys.count(entries[i].key) > 0) ++tp;
    if (i + 1 < entries.size() &&
        entries[i + 1].confidence == entries[i].confidence) {
      continue;
    }
    PrPoint p;
    p.threshold = entries[i].confidence;
    p.precision = static_cast<double>(tp) / static_cast<double>(i + 1);
    p.recall = gold.empty() ? 0.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(gold.size());
    curve.push_back(p);
  }
  return curve;
}

GoldCostGap MeasureGoldCostGap(const graph::SearchGraph& graph,
                               const graph::WeightVector& weights,
                               const std::vector<GoldEdge>& gold) {
  auto gold_keys = GoldKeys(gold);
  GoldCostGap gap;
  double gold_sum = 0.0;
  double other_sum = 0.0;
  for (graph::EdgeId e : graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    double cost = graph.EdgeCost(e, weights);
    if (gold_keys.count(AssociationKey(graph, graph.edge(e))) > 0) {
      gold_sum += cost;
      ++gap.gold_edges;
    } else {
      other_sum += cost;
      ++gap.non_gold_edges;
    }
  }
  if (gap.gold_edges > 0) {
    gap.gold_mean = gold_sum / static_cast<double>(gap.gold_edges);
  }
  if (gap.non_gold_edges > 0) {
    gap.non_gold_mean = other_sum / static_cast<double>(gap.non_gold_edges);
  }
  return gap;
}

}  // namespace q::learn
