#include "graph/cost_model.h"

#include <cmath>

namespace q::graph {

CostModel::CostModel(FeatureSpace* space, CostModelConfig config)
    : space_(space), config_(config) {
  // The FeatureSpace pre-creates "default" (id 0) with weight 0; pin its
  // initial weight to the configured uniform offset.
  space_->SetInitialWeight(FeatureSpace::kDefaultFeature,
                           config_.default_cost);
}

FeatureVec CostModel::MatcherConfidenceFeature(std::string_view matcher_name,
                                               double confidence) {
  FeatureVec f;
  int bin = BinIndex(confidence, config_.num_bins);
  std::string name = "matcher:";
  name += matcher_name;
  name += ":bin";
  name += std::to_string(bin);
  double init =
      config_.matcher_scale * (1.0 - BinCenter(bin, config_.num_bins));
  f.Add(space_->Intern(name, init), 1.0);
  return f;
}

FeatureId CostModel::MatcherMissingFeature(std::string_view matcher_name) {
  std::string name = "matcher:";
  name += matcher_name;
  name += ":missing";
  return space_->Intern(name, config_.matcher_scale);
}

FeatureId CostModel::RelationFeature(std::string_view qualified_relation) {
  std::string name = "rel:";
  name += qualified_relation;
  double init = -std::log(config_.default_authoritativeness);
  return space_->Intern(name, init);
}

FeatureVec CostModel::AssociationFeatures(std::string_view matcher_name,
                                          double confidence,
                                          std::string_view relation_a,
                                          std::string_view relation_b,
                                          std::string_view edge_key) {
  FeatureVec f;
  f.Add(space_->Intern("default", config_.default_cost), 1.0);
  f.AddScaled(MatcherConfidenceFeature(matcher_name, confidence), 1.0);
  f.Add(RelationFeature(relation_a), 1.0);
  if (relation_a != relation_b) f.Add(RelationFeature(relation_b), 1.0);
  std::string edge_name = "edge:";
  edge_name += edge_key;
  f.Add(space_->Intern(edge_name, 0.0), 1.0);
  return f;
}

FeatureVec CostModel::ForeignKeyFeatures(std::string_view edge_key) {
  FeatureVec f;
  f.Add(space_->Intern("default", config_.default_cost), 1.0);
  f.Add(space_->Intern("fk", config_.foreign_key_cost), 1.0);
  std::string edge_name = "edge:";
  edge_name += edge_key;
  f.Add(space_->Intern(edge_name, 0.0), 1.0);
  return f;
}

FeatureVec CostModel::KeywordMatchFeatures(double mismatch_cost,
                                           std::string_view relation,
                                           std::string_view edge_key) {
  FeatureVec f;
  f.Add(space_->Intern("default", config_.default_cost), 1.0);
  int bin = BinIndex(mismatch_cost, config_.num_bins);
  std::string bin_name = "kwmatch:bin" + std::to_string(bin);
  double init = config_.keyword_scale * BinCenter(bin, config_.num_bins);
  f.Add(space_->Intern(bin_name, init), 1.0);
  if (!relation.empty()) f.Add(RelationFeature(relation), 1.0);
  std::string edge_name = "kwedge:";
  edge_name += edge_key;
  f.Add(space_->Intern(edge_name, 0.0), 1.0);
  return f;
}

}  // namespace q::graph
