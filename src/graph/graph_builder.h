#ifndef Q_GRAPH_GRAPH_BUILDER_H_
#define Q_GRAPH_GRAPH_BUILDER_H_

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"

namespace q::graph {

// Adds one data source's relations (relation + attribute nodes with
// zero-cost membership edges) and its declared key-foreign-key edges to
// the graph (Sec. 2.1). Foreign keys referencing relations that are not
// (yet) in the graph are skipped. Idempotent per relation.
void AddSourceToGraph(const relational::DataSource& source, CostModel* model,
                      SearchGraph* graph);

// Initial search graph construction from everything in the catalog.
SearchGraph BuildSearchGraph(const relational::Catalog& catalog,
                             CostModel* model);

}  // namespace q::graph

#endif  // Q_GRAPH_GRAPH_BUILDER_H_
