#ifndef Q_GRAPH_LEGACY_REP_H_
#define Q_GRAPH_LEGACY_REP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/search_graph.h"

namespace q::graph {

// Faithful replica of the pre-compaction SearchGraph storage: AoS Edge
// records with inline FeatureVec / provenance / join payloads, one
// std::vector<EdgeId> adjacency list per node, value text inline in the
// node. Kept as the reference representation with two jobs:
//
//  * the differential suite replays one mutation sequence against both
//    representations and asserts the extracted CSR snapshots are
//    identical (same arc blocks in the same order), proving the blocked
//    arena preserves legacy adjacency order exactly;
//  * bench_graph_scale builds the same catalog in both and reports
//    measured bytes/source for each, which is what the >= 2x compaction
//    gate is measured against.
//
// Only the operations the differential suite and the bench replay are
// supported; this is a measurement fixture, not a second graph API.
class LegacyGraphRep {
 public:
  struct LegacyNode {
    NodeKind kind;
    std::string label;
    relational::AttributeId attr;
    std::string value_text;
  };

  NodeId AddNode(NodeKind kind, std::string label,
                 relational::AttributeId attr = {});
  EdgeId AddEdge(Edge edge);
  // Same merge semantics as SearchGraph::AddAssociationEdge.
  EdgeId AddAssociationEdge(NodeId a, NodeId b, FeatureVec features,
                            MatcherScore score);
  // Mirrors the old mutable_edge feature-rewrite path.
  void SetEdgeFeatures(EdgeId id, FeatureVec features);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const LegacyNode& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<EdgeId>& edges_of(NodeId id) const {
    return adjacency_[id];
  }

  double EdgeCost(EdgeId id, const WeightVector& weights) const {
    const Edge& e = edges_[id];
    if (e.fixed_zero) return 0.0;
    double c = weights.Dot(e.features);
    return c < kMinEdgeCost ? kMinEdgeCost : c;
  }

  // CSR extraction with exactly the layout steiner::CsrGraph::Build
  // produces (per-node arc blocks filled in edge-id order).
  struct LegacyCsr {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> arc_head;
    std::vector<EdgeId> arc_edge;
    std::vector<double> arc_cost;
    std::vector<std::uint32_t> edge_u;
    std::vector<std::uint32_t> edge_v;
    std::vector<double> edge_cost;
  };
  LegacyCsr BuildCsr(const WeightVector& weights) const;

  // Estimated resident bytes of this representation (same estimation
  // rules as SearchGraph::MemoryUsage so the two are comparable).
  std::size_t MemoryUsage() const;

 private:
  std::vector<LegacyNode> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::unordered_map<std::uint64_t, EdgeId> association_index_;
};

}  // namespace q::graph

#endif  // Q_GRAPH_LEGACY_REP_H_
