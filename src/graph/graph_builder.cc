#include "graph/graph_builder.h"

namespace q::graph {
namespace {

void AddForeignKeyEdges(const relational::RelationSchema& schema,
                        CostModel* model, SearchGraph* graph) {
  auto rel = graph->FindRelationNode(schema.QualifiedName());
  if (!rel.has_value()) return;
  for (const relational::ForeignKey& fk : schema.foreign_keys()) {
    std::string ref_qualified = fk.ref_source + "." + fk.ref_relation;
    auto ref = graph->FindRelationNode(ref_qualified);
    if (!ref.has_value()) continue;  // target source not registered yet
    relational::AttributeId local{schema.source(), schema.relation(),
                                  fk.local_attribute};
    relational::AttributeId remote{fk.ref_source, fk.ref_relation,
                                   fk.ref_attribute};
    // Skip if this FK edge already exists.
    bool exists = false;
    for (EdgeId eid : graph->edges_of(*rel)) {
      const EdgeView e = graph->edge(eid);
      if (e.kind == EdgeKind::kForeignKey && e.Other(*rel) == *ref &&
          e.join_a() == local && e.join_b() == remote) {
        exists = true;
        break;
      }
    }
    if (exists) continue;
    Edge edge;
    edge.u = *rel;
    edge.v = *ref;
    edge.kind = EdgeKind::kForeignKey;
    edge.join_a = local;
    edge.join_b = remote;
    std::string key = "fk:" + local.ToString() + "|" + remote.ToString();
    edge.features = model->ForeignKeyFeatures(key);
    graph->AddEdge(std::move(edge));
  }
}

}  // namespace

void AddSourceToGraph(const relational::DataSource& source, CostModel* model,
                      SearchGraph* graph) {
  for (const auto& table : source.tables()) {
    graph->AddRelation(table->schema());
  }
  // Second pass so FKs within the source resolve regardless of order.
  for (const auto& table : source.tables()) {
    AddForeignKeyEdges(table->schema(), model, graph);
  }
}

SearchGraph BuildSearchGraph(const relational::Catalog& catalog,
                             CostModel* model) {
  SearchGraph graph;
  for (const auto& source : catalog.sources()) {
    for (const auto& table : source->tables()) {
      graph.AddRelation(table->schema());
    }
  }
  for (const auto& source : catalog.sources()) {
    for (const auto& table : source->tables()) {
      AddForeignKeyEdges(table->schema(), model, &graph);
    }
  }
  return graph;
}

}  // namespace q::graph
