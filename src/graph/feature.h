#ifndef Q_GRAPH_FEATURE_H_
#define Q_GRAPH_FEATURE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/delta_journal.h"
#include "util/status.h"

namespace q::graph {

using FeatureId = std::uint32_t;

// Interns feature names to dense ids and remembers each feature's initial
// weight (Sec. 3.4: an edge's cost is a learned-weight / feature-value dot
// product; initial weights encode default costs, matcher confidence
// scaling, relation authoritativeness, and per-edge offsets).
//
// Feature id 0 is always the shared "default" feature present on every
// learnable edge; its weight acts as the uniform positive offset MIRA uses
// to keep all edge costs positive (Sec. 4).
class FeatureSpace {
 public:
  FeatureSpace();

  // Returns the id for `name`, creating it with `initial_weight` if new
  // (the initial weight of an existing feature is left unchanged).
  FeatureId Intern(std::string_view name, double initial_weight);

  // Lookup without creating; returns false if absent.
  bool Find(std::string_view name, FeatureId* id) const;

  // Overrides a feature's initial weight (used by CostModel to pin the
  // default feature's offset). Only affects WeightVector reads that have
  // not yet materialized the id.
  void SetInitialWeight(FeatureId id, double w) { initial_weights_[id] = w; }

  std::size_t size() const { return names_.size(); }
  const std::string& name(FeatureId id) const { return names_[id]; }
  double initial_weight(FeatureId id) const { return initial_weights_[id]; }

  static constexpr FeatureId kDefaultFeature = 0;

 private:
  std::unordered_map<std::string, FeatureId> ids_;
  std::vector<std::string> names_;
  std::vector<double> initial_weights_;
};

// Sparse feature vector: sorted unique (id, value) pairs.
class FeatureVec {
 public:
  FeatureVec() = default;

  // Adds `value` to feature `id` (merging duplicates).
  void Add(FeatureId id, double value);

  const std::vector<std::pair<FeatureId, double>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  double ValueOf(FeatureId id) const;

  // Drops the entry for `id` if present; returns whether it was present.
  bool Remove(FeatureId id);

  // this += other * scale
  void AddScaled(const FeatureVec& other, double scale);

  bool operator==(const FeatureVec& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<std::pair<FeatureId, double>> entries_;
};

// One weight mutation: feature `id` moved from `old_value` to
// `new_value`. The unit of the delta pipeline — a journal of these is
// what lets snapshot holders reprice only the edges whose features moved
// instead of re-evaluating every edge cost (CsrGraph::RecostDelta).
struct FeatureDelta {
  FeatureId id;
  double old_value;
  double new_value;
};

// Coalesces a raw journal slice in place: one entry per feature (first
// old value, last new value, journal order of first touch preserved),
// dropping features whose net movement is zero (A -> B -> A). The result
// is the minimal change set equivalent to replaying the slice.
void CoalesceFeatureDeltas(std::vector<FeatureDelta>* deltas);

// Dense weight vector aligned with a FeatureSpace. Unseen ids read as
// their initial weight.
//
// Every effective mutation both bumps the monotone revision counter and
// appends a FeatureDelta record to a bounded journal, so snapshot
// holders can ask "what moved since revision R" (DeltaSince) and reprice
// only the affected edges. The journal is capped; once it overflows (or
// after ResetToInitial), older revisions become unanswerable and
// DeltaSince reports truncation, which consumers treat as "assume
// everything moved" (full re-cost fallback).
class WeightVector {
 public:
  explicit WeightVector(const FeatureSpace* space) : space_(space) {}

  double At(FeatureId id) const {
    return id < values_.size() ? values_[id] : space_->initial_weight(id);
  }

  void Set(FeatureId id, double w) {
    EnsureSize(id + 1);
    // No-op writes (e.g. a MIRA step with zero margin) must not move the
    // revision: downstream snapshot holders would re-cost and re-search
    // every view to reproduce byte-identical results.
    if (values_[id] != w) {
      journal_.Append(FeatureDelta{id, values_[id], w});
      values_[id] = w;
    }
  }

  void Nudge(FeatureId id, double delta) { Set(id, At(id) + delta); }

  // Monotone mutation counter, bumped by every Set/Nudge/ResetToInitial.
  // Lets snapshot holders (the RefreshEngine's per-view CSR snapshots)
  // detect weight updates — from MIRA or from direct mutable_weights()
  // pokes — without explicit notification.
  std::uint64_t revision() const { return journal_.revision(); }

  // Appends the raw journal records for revisions (since_revision,
  // revision()] to `out` (oldest first, one record per revision).
  // Returns false when the journal no longer reaches back to
  // `since_revision` (overflow or ResetToInitial): the caller must then
  // assume every feature may have moved. Callers typically follow with
  // CoalesceFeatureDeltas.
  bool DeltaSince(std::uint64_t since_revision,
                  std::vector<FeatureDelta>* out) const {
    return journal_.DeltaSince(since_revision, out);
  }

  // Oldest revision DeltaSince can still answer from.
  std::uint64_t journal_base_revision() const {
    return journal_.base_revision();
  }

  // Journal capacity (records, i.e. effective mutations). Shrinking it
  // below the current journal size takes effect on the next mutation.
  void set_max_journal_entries(std::size_t n) { journal_.set_max_entries(n); }

  // w · f
  double Dot(const FeatureVec& f) const {
    double sum = 0.0;
    for (const auto& [id, value] : f.entries()) sum += At(id) * value;
    return sum;
  }

  // Resets every weight to its initial value. Truncates the journal: a
  // reset is a dense change, so delta consumers must rebuild.
  void ResetToInitial() {
    journal_.Truncate();
    values_.clear();
  }

  // Persistence support (src/persist): reinstates the dense values and
  // the journal exactly as saved, bypassing Set's journaling so the
  // restored vector is bit-identical — same values, same revision, same
  // answerable DeltaSince range — to the one that was snapshotted.
  void Restore(std::vector<double> values, std::uint64_t journal_base_revision,
               std::vector<FeatureDelta> journal_records) {
    values_ = std::move(values);
    journal_.Restore(journal_base_revision, std::move(journal_records));
  }

  const std::vector<double>& values() const { return values_; }

  // The saved journal slice: every record DeltaSince can still answer
  // (i.e. revisions (journal_base_revision(), revision()]).
  std::vector<FeatureDelta> JournalRecords() const {
    std::vector<FeatureDelta> out;
    journal_.DeltaSince(journal_.base_revision(), &out);
    return out;
  }

  const FeatureSpace* space() const { return space_; }

 private:
  void EnsureSize(std::size_t n) {
    while (values_.size() < n) {
      values_.push_back(space_->initial_weight(
          static_cast<FeatureId>(values_.size())));
    }
  }

  static constexpr std::size_t kDefaultMaxJournalEntries = 1 << 16;

  const FeatureSpace* space_;
  std::vector<double> values_;
  util::DeltaJournal<FeatureDelta> journal_{kDefaultMaxJournalEntries};
};

// Maps a real value in [0,1] to one of `num_bins` equal-width bins
// (Sec. 4: real-valued features are replaced by bin-membership
// indicators before MIRA learning).
int BinIndex(double value, int num_bins);

// Center of bin `bin` out of `num_bins` over [0,1].
double BinCenter(int bin, int num_bins);

}  // namespace q::graph

#endif  // Q_GRAPH_FEATURE_H_
