#include "graph/legacy_rep.h"

#include <algorithm>

#include "util/status.h"

namespace q::graph {

namespace {

std::string IndexKey(NodeKind kind, std::string_view label) {
  std::string key;
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += '\x1f';
  key += label;
  return key;
}

std::uint64_t PairKey(NodeId a, NodeId b) {
  NodeId lo = a < b ? a : b;
  NodeId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::size_t StringHeapBytes(const std::string& s) {
  constexpr std::size_t kSsoCapacity = 15;
  return s.capacity() > kSsoCapacity ? s.capacity() + 1 : 0;
}

std::size_t AttributeIdHeapBytes(const relational::AttributeId& a) {
  return StringHeapBytes(a.source) + StringHeapBytes(a.relation) +
         StringHeapBytes(a.attribute);
}

template <typename Map>
std::size_t HashMapBytes(const Map& map) {
  using Value = typename Map::value_type;
  return map.size() * (sizeof(Value) + 2 * sizeof(void*)) +
         map.bucket_count() * sizeof(void*);
}

}  // namespace

NodeId LegacyGraphRep::AddNode(NodeKind kind, std::string label,
                               relational::AttributeId attr) {
  std::string key = IndexKey(kind, label);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(LegacyNode{kind, std::move(label), std::move(attr), {}});
  adjacency_.emplace_back();
  node_index_.emplace(std::move(key), id);
  return id;
}

EdgeId LegacyGraphRep::AddEdge(Edge edge) {
  Q_CHECK(edge.u < nodes_.size() && edge.v < nodes_.size());
  Q_CHECK(edge.u != edge.v);
  EdgeId id = static_cast<EdgeId>(edges_.size());
  adjacency_[edge.u].push_back(id);
  adjacency_[edge.v].push_back(id);
  if (edge.kind == EdgeKind::kAssociation) {
    association_index_.emplace(PairKey(edge.u, edge.v), id);
  }
  edges_.push_back(std::move(edge));
  return id;
}

EdgeId LegacyGraphRep::AddAssociationEdge(NodeId a, NodeId b,
                                          FeatureVec features,
                                          MatcherScore score) {
  auto it = association_index_.find(PairKey(a, b));
  if (it != association_index_.end()) {
    Edge& e = edges_[it->second];
    e.features.AddScaled(features, 1.0);
    for (auto& p : e.provenance) {
      if (p.matcher == score.matcher) {
        p.confidence = std::max(p.confidence, score.confidence);
        return it->second;
      }
    }
    e.provenance.push_back(std::move(score));
    return it->second;
  }
  Edge edge;
  edge.u = a;
  edge.v = b;
  edge.kind = EdgeKind::kAssociation;
  edge.features = std::move(features);
  edge.provenance.push_back(std::move(score));
  return AddEdge(std::move(edge));
}

void LegacyGraphRep::SetEdgeFeatures(EdgeId id, FeatureVec features) {
  edges_[id].features = std::move(features);
}

LegacyGraphRep::LegacyCsr LegacyGraphRep::BuildCsr(
    const WeightVector& weights) const {
  LegacyCsr csr;
  const std::uint32_t num_nodes = static_cast<std::uint32_t>(nodes_.size());
  const std::uint32_t num_edges = static_cast<std::uint32_t>(edges_.size());

  csr.edge_u.resize(num_edges);
  csr.edge_v.resize(num_edges);
  csr.edge_cost.resize(num_edges);
  std::vector<std::uint32_t> degree(num_nodes + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    csr.edge_u[e] = edges_[e].u;
    csr.edge_v[e] = edges_[e].v;
    csr.edge_cost[e] = EdgeCost(e, weights);
    ++degree[edges_[e].u];
    ++degree[edges_[e].v];
  }

  csr.offsets.assign(num_nodes + 1, 0);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + degree[v];
  }

  const std::size_t num_arcs = 2ull * num_edges;
  csr.arc_head.resize(num_arcs);
  csr.arc_edge.resize(num_arcs);
  csr.arc_cost.resize(num_arcs);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) {
    std::uint32_t u = csr.edge_u[e];
    std::uint32_t v = csr.edge_v[e];
    double cost = csr.edge_cost[e];
    std::uint32_t cu = cursor[u]++;
    csr.arc_head[cu] = v;
    csr.arc_edge[cu] = e;
    csr.arc_cost[cu] = cost;
    std::uint32_t cv = cursor[v]++;
    csr.arc_head[cv] = u;
    csr.arc_edge[cv] = e;
    csr.arc_cost[cv] = cost;
  }
  return csr;
}

std::size_t LegacyGraphRep::MemoryUsage() const {
  std::size_t bytes = nodes_.capacity() * sizeof(LegacyNode);
  for (const LegacyNode& n : nodes_) {
    bytes += StringHeapBytes(n.label) + AttributeIdHeapBytes(n.attr) +
             StringHeapBytes(n.value_text);
  }

  bytes += edges_.capacity() * sizeof(Edge);
  for (const Edge& e : edges_) {
    bytes += e.features.entries().capacity() *
             sizeof(std::pair<FeatureId, double>);
    bytes += e.provenance.capacity() * sizeof(MatcherScore);
    for (const MatcherScore& s : e.provenance) {
      bytes += StringHeapBytes(s.matcher);
    }
    bytes += AttributeIdHeapBytes(e.join_a) + AttributeIdHeapBytes(e.join_b);
  }

  bytes += adjacency_.capacity() * sizeof(std::vector<EdgeId>);
  for (const std::vector<EdgeId>& adj : adjacency_) {
    bytes += adj.capacity() * sizeof(EdgeId);
  }

  bytes += HashMapBytes(node_index_);
  for (const auto& [key, id] : node_index_) bytes += StringHeapBytes(key);
  bytes += HashMapBytes(association_index_);
  return bytes;
}

}  // namespace q::graph
