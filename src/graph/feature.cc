#include "graph/feature.h"

#include <algorithm>

namespace q::graph {

FeatureSpace::FeatureSpace() {
  // Reserve id 0 for the shared default feature; its initial weight is set
  // by the cost model config via Intern (first Intern wins, and
  // BuildSearchGraph interns it up front).
  names_.push_back("default");
  initial_weights_.push_back(0.0);
  ids_["default"] = 0;
}

FeatureId FeatureSpace::Intern(std::string_view name, double initial_weight) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  FeatureId id = static_cast<FeatureId>(names_.size());
  names_.emplace_back(name);
  initial_weights_.push_back(initial_weight);
  ids_.emplace(names_.back(), id);
  if (name == "default") return 0;  // unreachable; defensive
  return id;
}

bool FeatureSpace::Find(std::string_view name, FeatureId* id) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

void FeatureVec::Add(FeatureId id, double value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const std::pair<FeatureId, double>& e, FeatureId target) {
        return e.first < target;
      });
  if (it != entries_.end() && it->first == id) {
    it->second += value;
  } else {
    entries_.insert(it, {id, value});
  }
}

double FeatureVec::ValueOf(FeatureId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const std::pair<FeatureId, double>& e, FeatureId target) {
        return e.first < target;
      });
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0;
}

bool FeatureVec::Remove(FeatureId id) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const std::pair<FeatureId, double>& e, FeatureId target) {
        return e.first < target;
      });
  if (it != entries_.end() && it->first == id) {
    entries_.erase(it);
    return true;
  }
  return false;
}

void FeatureVec::AddScaled(const FeatureVec& other, double scale) {
  for (const auto& [id, value] : other.entries()) Add(id, value * scale);
}

void CoalesceFeatureDeltas(std::vector<FeatureDelta>* deltas) {
  // Stable-sort by id keeps journal order within a feature, so after
  // grouping, the group's first record holds the oldest old_value and its
  // last record the newest new_value.
  std::stable_sort(deltas->begin(), deltas->end(),
                   [](const FeatureDelta& a, const FeatureDelta& b) {
                     return a.id < b.id;
                   });
  std::size_t out = 0;
  std::size_t i = 0;
  while (i < deltas->size()) {
    std::size_t j = i;
    while (j + 1 < deltas->size() && (*deltas)[j + 1].id == (*deltas)[i].id) {
      ++j;
    }
    FeatureDelta merged{(*deltas)[i].id, (*deltas)[i].old_value,
                        (*deltas)[j].new_value};
    if (merged.old_value != merged.new_value) (*deltas)[out++] = merged;
    i = j + 1;
  }
  deltas->resize(out);
}

int BinIndex(double value, int num_bins) {
  if (value <= 0.0) return 0;
  if (value >= 1.0) return num_bins - 1;
  int bin = static_cast<int>(value * num_bins);
  return std::min(bin, num_bins - 1);
}

double BinCenter(int bin, int num_bins) {
  return (static_cast<double>(bin) + 0.5) / static_cast<double>(num_bins);
}

}  // namespace q::graph
