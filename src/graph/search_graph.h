#ifndef Q_GRAPH_SEARCH_GRAPH_H_
#define Q_GRAPH_SEARCH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/feature.h"
#include "relational/schema.h"
#include "util/delta_journal.h"
#include "util/result.h"

namespace q::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

// Guard so Dijkstra/Steiner costs stay strictly positive even mid-learning.
inline constexpr double kMinEdgeCost = 1e-9;

enum class NodeKind {
  kRelation = 0,
  kAttribute = 1,
  kValue = 2,    // lazily materialized data value (query graphs only)
  kKeyword = 3,  // query keyword (query graphs only)
};

std::string_view NodeKindToString(NodeKind kind);

struct Node {
  NodeKind kind;
  // Canonical label: qualified relation/attribute name, "<attr>=<text>"
  // for value nodes, or the keyword string.
  std::string label;
  // For kAttribute and kValue nodes: the owning attribute.
  relational::AttributeId attr;
};

enum class EdgeKind {
  kMembership = 0,   // attribute <-> its relation (always cost 0)
  kForeignKey = 1,   // relation <-> relation via declared FK
  kAssociation = 2,  // attribute <-> attribute (alignment)
  kKeywordMatch = 3, // keyword <-> relation/attribute/value node
  kValueMembership = 4,  // value <-> its attribute (always cost 0)
};

std::string_view EdgeKindToString(EdgeKind kind);

// Record of one matcher's vote for an association edge.
struct MatcherScore {
  std::string matcher;
  double confidence;  // in [0, 1]

  bool operator==(const MatcherScore& o) const {
    return matcher == o.matcher && confidence == o.confidence;
  }
};

// Construction/exchange record for one edge. The graph does NOT store
// Edge structs — edges live in SoA arrays with interned feature and
// provenance payloads (see SearchGraph) — but construction sites still
// describe an edge with this struct and persistence materializes one per
// edge via ExportEdge().
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  EdgeKind kind = EdgeKind::kAssociation;
  // Empty + fixed_zero for the structurally-zero-cost edges (the MIRA
  // zero-cost constraint set A is enforced by giving those edges no
  // features at all).
  FeatureVec features;
  bool fixed_zero = false;
  // Matcher votes that created/confirmed this association edge.
  std::vector<MatcherScore> provenance;
  // For kForeignKey edges (which connect relation nodes, per Fig. 2): the
  // joining attribute pair. For kAssociation edges u/v are the attribute
  // nodes themselves, so this is left empty.
  relational::AttributeId join_a;
  relational::AttributeId join_b;

  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

class SearchGraph;

// Cheap-to-copy read view over one edge in the SoA store. Endpoints and
// kind are materialized fields (the hot path); features/provenance/joins
// dereference into the owning graph's pools on demand. A view stays
// valid until the graph is next mutated.
struct EdgeView {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  EdgeKind kind = EdgeKind::kAssociation;
  bool fixed_zero = false;

  NodeId Other(NodeId n) const { return n == u ? v : u; }
  const FeatureVec& features() const { return *features_; }
  const std::vector<MatcherScore>& provenance() const;
  const relational::AttributeId& join_a() const;
  const relational::AttributeId& join_b() const;

 private:
  friend class SearchGraph;
  const SearchGraph* g_ = nullptr;
  EdgeId id_ = kInvalidEdge;
  const FeatureVec* features_ = nullptr;
};

// Borrowed, contiguous span of a node's incident edge ids, served
// straight from the adjacency arena without copying. Invalidated by any
// edge insertion (the arena may relocate) — do not hold one across
// AddEdge on the same graph.
class AdjacencyRange {
 public:
  const EdgeId* begin() const { return begin_; }
  const EdgeId* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  EdgeId operator[](std::size_t i) const { return begin_[i]; }

 private:
  friend class SearchGraph;
  AdjacencyRange(const EdgeId* b, const EdgeId* e) : begin_(b), end_(e) {}
  const EdgeId* begin_;
  const EdgeId* end_;
};

// Content-interning pool of FeatureVecs: identical vectors share one
// stored copy, so the millions of templated synthetic edges that carry
// the same feature pattern cost one FeatureVec between them. Id 0 is
// always the empty vector. Entries are immutable once interned
// (mutation = copy out, edit, re-intern); superseded entries linger
// until the graph is rebuilt and are reported by MemoryUsage().
class FeatureVecPool {
 public:
  FeatureVecPool() { vecs_.emplace_back(); }

  std::uint32_t Intern(FeatureVec vec);
  const FeatureVec& at(std::uint32_t id) const { return vecs_[id]; }
  std::size_t size() const { return vecs_.size(); }
  std::size_t MemoryUsage() const;

  static constexpr std::uint32_t kEmpty = 0;

 private:
  std::vector<FeatureVec> vecs_;
  // hash -> candidate ids (chained for collisions)
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
};

// Same interning scheme for provenance lists (matcher vote records).
// Templated edges from one generator share a single vote list.
class ProvenancePool {
 public:
  ProvenancePool() { lists_.emplace_back(); }

  std::uint32_t Intern(std::vector<MatcherScore> list);
  const std::vector<MatcherScore>& at(std::uint32_t id) const {
    return lists_[id];
  }
  std::size_t size() const { return lists_.size(); }
  std::size_t MemoryUsage() const;

  static constexpr std::uint32_t kEmpty = 0;

 private:
  std::vector<std::vector<MatcherScore>> lists_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
};

// One structural mutation of a SearchGraph, recorded in the graph's
// delta journal. kNodeAdded/kEdgeAdded change topology (snapshot holders
// must rebuild); kNodeMutated/kEdgeMutated record in-place mutation
// through the Set*/Overwrite* mutators — conservatively, since the
// caller may change any payload. An edge-mutation-only delta over an
// unchanged node/edge set is the case the refresh pipeline can reconcile
// without re-extracting topology (propagate the mutated edges' features
// into each snapshot and reprice just them).
enum class GraphDeltaKind : std::uint8_t {
  kNodeAdded = 0,
  kEdgeAdded = 1,
  kNodeMutated = 2,
  kEdgeMutated = 3,
};

struct GraphDelta {
  GraphDeltaKind kind;
  std::uint32_t id;  // NodeId or EdgeId per kind
};

// Per-section byte estimate of a SearchGraph's resident footprint
// (capacities, heap blocks and hash buckets included; malloc headers
// not). feature_pool/provenance include superseded pool entries that
// mutation left behind — the honest number, not the live-set number.
struct MemoryBreakdown {
  std::size_t nodes_bytes = 0;
  std::size_t node_index_bytes = 0;
  std::size_t edges_bytes = 0;       // SoA arrays + join side table
  std::size_t adjacency_bytes = 0;   // slot table + arena
  std::size_t feature_pool_bytes = 0;
  std::size_t provenance_bytes = 0;
  std::size_t journal_bytes = 0;

  std::size_t total() const {
    return nodes_bytes + node_index_bytes + edges_bytes + adjacency_bytes +
           feature_pool_bytes + provenance_bytes + journal_bytes;
  }
};

// Reusable multi-source Dijkstra output: a distance array that is reset
// in O(previously reached) instead of O(num_nodes), plus the list of
// reached nodes. At() reads infinity for unreached nodes. One field per
// thread (or thread_local) amortizes all allocation across calls.
class DistanceField {
 public:
  double At(NodeId n) const {
    return n < dist_.size() ? dist_[n]
                            : std::numeric_limits<double>::infinity();
  }
  // Nodes with finite distance, in settle (ascending distance) order.
  const std::vector<NodeId>& reached() const { return reached_; }

 private:
  friend class SearchGraph;
  void Reset(std::size_t num_nodes) {
    for (NodeId n : reached_) {
      dist_[n] = std::numeric_limits<double>::infinity();
    }
    reached_.clear();
    if (dist_.size() < num_nodes) {
      dist_.resize(num_nodes, std::numeric_limits<double>::infinity());
    }
  }

  std::vector<double> dist_;
  std::vector<NodeId> reached_;
};

// The search graph of Sec. 2.1/3.1: relations, attributes (and in query
// graphs, values and keywords) connected by undirected weighted edges.
// Edge costs are not stored; they are computed per query as w · f(e)
// against a WeightVector, so learning updates reprice the whole graph.
//
// Storage is built for catalogs of 10^5-10^6 sources: edges live in SoA
// arrays (endpoints, kind, flags, payload ids), feature vectors and
// provenance lists are content-interned in pools (templated edges share
// one copy), join attributes sit in a sparse side table (only FK edges
// have them), value text in a sparse side map (only query-graph value
// nodes have it), and adjacency is a blocked CSR: per-node
// {offset,count,capacity} slots over one shared EdgeId arena with
// capacity-doubling relocation, squeezed tight by CompactAdjacency().
// Within a node's block edge ids appear in insertion order — identical
// to the legacy vector<vector> layout, which the CSR differential suite
// asserts.
//
// Every revision bump appends one GraphDelta record to a bounded
// journal, so snapshot holders can ask "what changed since revision R"
// (DeltaSince) and, when the answer is edge mutations only, skip the
// full query-graph re-expansion. Journal overflow reports truncation,
// which consumers treat as "assume anything changed" (rebuild fallback).
class SearchGraph {
 public:
  SearchGraph() = default;

  // --- construction -------------------------------------------------------
  NodeId AddNode(NodeKind kind, std::string label,
                 relational::AttributeId attr = {});

  // Adds (or finds) the relation node for a schema and one attribute node
  // per attribute, with zero-cost membership edges.
  NodeId AddRelation(const relational::RelationSchema& schema);

  EdgeId AddEdge(Edge edge);

  // Adds an association edge between two attribute nodes, merging the
  // matcher score into an existing association edge for the same pair if
  // present (returns that edge). `features` are only applied when the edge
  // is new; use RebuildAssociationFeatures-style helpers to refresh.
  EdgeId AddAssociationEdge(NodeId a, NodeId b, FeatureVec features,
                            MatcherScore score);

  // --- lookup -------------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edge_u_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }

  // Raw value text of a kValue node ("" for all other nodes).
  const std::string& node_value_text(NodeId id) const;

  EdgeView edge(EdgeId id) const {
    EdgeView view;
    view.u = edge_u_[id];
    view.v = edge_v_[id];
    view.kind = static_cast<EdgeKind>(edge_kind_[id]);
    view.fixed_zero = (edge_flags_[id] & kFlagFixedZero) != 0;
    view.g_ = this;
    view.id_ = id;
    view.features_ = &feature_pool_.at(edge_feature_[id]);
    return view;
  }

  const FeatureVec& edge_features(EdgeId id) const {
    return feature_pool_.at(edge_feature_[id]);
  }
  const std::vector<MatcherScore>& edge_provenance(EdgeId id) const {
    return prov_pool_.at(edge_prov_[id]);
  }
  const relational::AttributeId& edge_join_a(EdgeId id) const;
  const relational::AttributeId& edge_join_b(EdgeId id) const;

  // Materializes a full Edge record (persistence, graph-to-graph copy).
  Edge ExportEdge(EdgeId id) const;

  // --- mutation -----------------------------------------------------------
  // All in-place payload mutation goes through these (there is no mutable
  // reference into the SoA store); each journals the mutation exactly once.

  // Replaces an edge's feature vector (re-interned into the pool).
  void SetEdgeFeatures(EdgeId id, FeatureVec features);

  // Replaces every payload of an existing edge from `src` (features,
  // fixed_zero, provenance, joins). Endpoints and kind must match — this
  // is the snapshot-propagation path, not a topology edit.
  void OverwriteEdge(EdgeId id, const Edge& src);

  // Sets a node's value text (kValue nodes).
  void SetNodeValueText(NodeId id, std::string text);

  // Monotone mutation counter: bumped by every AddNode/AddEdge and by each
  // Set*/Overwrite* mutation. Snapshot consumers (the RefreshEngine's CSR
  // snapshots) compare revisions to detect that a graph changed
  // underneath them without requiring explicit notification from every
  // mutation site.
  std::uint64_t revision() const { return journal_.revision(); }

  // Appends the journal records for revisions (since_revision,
  // revision()] to `out` (oldest first, one record per revision).
  // Returns false when the journal no longer reaches back to
  // `since_revision` (overflow): the caller must then assume arbitrary
  // structural change. Records are conservative — a kEdgeMutated entry
  // means "this edge may differ", not that it does.
  bool DeltaSince(std::uint64_t since_revision,
                  std::vector<GraphDelta>* out) const {
    return journal_.DeltaSince(since_revision, out);
  }

  // Oldest revision DeltaSince can still answer from.
  std::uint64_t journal_base_revision() const {
    return journal_.base_revision();
  }

  // Journal capacity (records). Shrinking it below the current journal
  // size takes effect on the next mutation.
  void set_max_journal_entries(std::size_t n) { journal_.set_max_entries(n); }

  // Persistence support (src/persist): reinstates the journal exactly as
  // saved, discarding the bookkeeping noise AddNode/AddEdge generated
  // while the loader reconstructed the topology. Afterwards revision()
  // and DeltaSince answer exactly as they did at save time.
  void RestoreJournal(std::uint64_t base_revision,
                      std::vector<GraphDelta> records) {
    journal_.Restore(base_revision, std::move(records));
  }

  // The saved journal slice (revisions (journal_base_revision(),
  // revision()]).
  std::vector<GraphDelta> JournalRecords() const {
    std::vector<GraphDelta> out;
    journal_.DeltaSince(journal_.base_revision(), &out);
    return out;
  }

  // Incident edge ids in insertion order, served from the adjacency
  // arena without copying. Invalidated by the next AddEdge.
  AdjacencyRange edges_of(NodeId id) const {
    const AdjSlot& slot = adj_[id];
    const EdgeId* base = adj_arena_.data() + slot.offset;
    return AdjacencyRange(base, base + slot.count);
  }

  // Squeezes the adjacency arena tight (capacity == count per node,
  // relocation garbage dropped). Call once after bulk construction.
  void CompactAdjacency();

  // Node of given kind with the given label, if any.
  std::optional<NodeId> FindNode(NodeKind kind, std::string_view label) const;

  std::optional<NodeId> FindRelationNode(
      std::string_view qualified_name) const {
    return FindNode(NodeKind::kRelation, qualified_name);
  }
  std::optional<NodeId> FindAttributeNode(
      const relational::AttributeId& id) const {
    return FindNode(NodeKind::kAttribute, id.ToString());
  }

  // Existing association edge between the two nodes, if any.
  std::optional<EdgeId> FindAssociation(NodeId a, NodeId b) const;

  // The relation node an attribute/value node belongs to (via membership
  // edges); for relation nodes, the node itself.
  std::optional<NodeId> OwningRelation(NodeId id) const;

  // All edge ids of a given kind.
  std::vector<EdgeId> EdgesOfKind(EdgeKind kind) const;

  // Estimated resident bytes by section (see MemoryBreakdown).
  MemoryBreakdown MemoryUsage() const;

  // --- costs --------------------------------------------------------------
  double EdgeCost(EdgeId id, const WeightVector& weights) const {
    if ((edge_flags_[id] & kFlagFixedZero) != 0) return 0.0;
    double c = weights.Dot(feature_pool_.at(edge_feature_[id]));
    return c < kMinEdgeCost ? kMinEdgeCost : c;
  }

  // Multi-source Dijkstra: starts from (node, initial cost) seeds and
  // explores until `max_cost` (inclusive); writes distances for reached
  // nodes into `out` (infinity elsewhere). `out` is caller-owned scratch
  // — reusing one field across calls does no steady-state allocation.
  void Dijkstra(const std::vector<std::pair<NodeId, double>>& seeds,
                const WeightVector& weights, double max_cost,
                DistanceField* out) const;

  // Convenience overload materializing a dense distance vector.
  std::vector<double> Dijkstra(
      const std::vector<std::pair<NodeId, double>>& seeds,
      const WeightVector& weights,
      double max_cost = std::numeric_limits<double>::infinity()) const;

 private:
  friend struct EdgeView;

  // Blocked-CSR adjacency slot: `count` edge ids for one node starting at
  // arena offset `offset`, with `capacity` slots reserved before the
  // block must relocate to the arena tail.
  struct AdjSlot {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
  };

  static constexpr std::uint8_t kFlagFixedZero = 1;

  // Bumps the revision and appends the matching journal record; every
  // mutation site funnels through here so revision and journal can never
  // drift apart.
  void Journal(GraphDeltaKind kind, std::uint32_t id) {
    journal_.Append(GraphDelta{kind, id});
  }

  void AdjAppend(NodeId n, EdgeId e);
  void SetEdgeJoins(EdgeId id, const relational::AttributeId& a,
                    const relational::AttributeId& b);

  static constexpr std::size_t kDefaultMaxJournalEntries = 1 << 16;

  util::DeltaJournal<GraphDelta> journal_{kDefaultMaxJournalEntries};
  std::vector<Node> nodes_;

  // SoA edge store.
  std::vector<NodeId> edge_u_;
  std::vector<NodeId> edge_v_;
  std::vector<std::uint8_t> edge_kind_;
  std::vector<std::uint8_t> edge_flags_;
  std::vector<std::uint32_t> edge_feature_;  // FeatureVecPool id
  std::vector<std::uint32_t> edge_prov_;     // ProvenancePool id

  FeatureVecPool feature_pool_;
  ProvenancePool prov_pool_;

  // Sparse payloads: most edges have no join attributes, most nodes no
  // value text.
  std::unordered_map<EdgeId,
                     std::pair<relational::AttributeId, relational::AttributeId>>
      edge_joins_;
  std::unordered_map<NodeId, std::string> value_text_;

  // Blocked-CSR adjacency.
  std::vector<AdjSlot> adj_;
  std::vector<EdgeId> adj_arena_;

  // (kind, label) -> node
  std::unordered_map<std::string, NodeId> node_index_;
  // min(u,v) << 32 | max(u,v) -> association edge
  std::unordered_map<std::uint64_t, EdgeId> association_index_;

  static std::string IndexKey(NodeKind kind, std::string_view label);
  static std::uint64_t PairKey(NodeId a, NodeId b);
};

inline const std::vector<MatcherScore>& EdgeView::provenance() const {
  return g_->edge_provenance(id_);
}
inline const relational::AttributeId& EdgeView::join_a() const {
  return g_->edge_join_a(id_);
}
inline const relational::AttributeId& EdgeView::join_b() const {
  return g_->edge_join_b(id_);
}

}  // namespace q::graph

#endif  // Q_GRAPH_SEARCH_GRAPH_H_
