#ifndef Q_GRAPH_SEARCH_GRAPH_H_
#define Q_GRAPH_SEARCH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/feature.h"
#include "relational/schema.h"
#include "util/delta_journal.h"
#include "util/result.h"

namespace q::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

// Guard so Dijkstra/Steiner costs stay strictly positive even mid-learning.
inline constexpr double kMinEdgeCost = 1e-9;

enum class NodeKind {
  kRelation = 0,
  kAttribute = 1,
  kValue = 2,    // lazily materialized data value (query graphs only)
  kKeyword = 3,  // query keyword (query graphs only)
};

std::string_view NodeKindToString(NodeKind kind);

struct Node {
  NodeKind kind;
  // Canonical label: qualified relation/attribute name, "<attr>=<text>"
  // for value nodes, or the keyword string.
  std::string label;
  // For kAttribute and kValue nodes: the owning attribute.
  relational::AttributeId attr;
  // For kValue nodes: the raw value text (used as a selection predicate).
  std::string value_text;
};

enum class EdgeKind {
  kMembership = 0,   // attribute <-> its relation (always cost 0)
  kForeignKey = 1,   // relation <-> relation via declared FK
  kAssociation = 2,  // attribute <-> attribute (alignment)
  kKeywordMatch = 3, // keyword <-> relation/attribute/value node
  kValueMembership = 4,  // value <-> its attribute (always cost 0)
};

std::string_view EdgeKindToString(EdgeKind kind);

// Record of one matcher's vote for an association edge.
struct MatcherScore {
  std::string matcher;
  double confidence;  // in [0, 1]
};

struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  EdgeKind kind = EdgeKind::kAssociation;
  // Empty + fixed_zero for the structurally-zero-cost edges (the MIRA
  // zero-cost constraint set A is enforced by giving those edges no
  // features at all).
  FeatureVec features;
  bool fixed_zero = false;
  // Matcher votes that created/confirmed this association edge.
  std::vector<MatcherScore> provenance;
  // For kForeignKey edges (which connect relation nodes, per Fig. 2): the
  // joining attribute pair. For kAssociation edges u/v are the attribute
  // nodes themselves, so this is left empty.
  relational::AttributeId join_a;
  relational::AttributeId join_b;

  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

// One structural mutation of a SearchGraph, recorded in the graph's
// delta journal. kNodeAdded/kEdgeAdded change topology (snapshot holders
// must rebuild); kNodeMutated/kEdgeMutated record in-place mutation
// through mutable_node/mutable_edge — conservatively, since the caller
// may change anything through the returned reference. An edge-mutation-
// only delta over an unchanged node/edge set is the case the refresh
// pipeline can reconcile without re-extracting topology (propagate the
// mutated edges' features into each snapshot and reprice just them).
enum class GraphDeltaKind : std::uint8_t {
  kNodeAdded = 0,
  kEdgeAdded = 1,
  kNodeMutated = 2,
  kEdgeMutated = 3,
};

struct GraphDelta {
  GraphDeltaKind kind;
  std::uint32_t id;  // NodeId or EdgeId per kind
};

// The search graph of Sec. 2.1/3.1: relations, attributes (and in query
// graphs, values and keywords) connected by undirected weighted edges.
// Edge costs are not stored; they are computed per query as w · f(e)
// against a WeightVector, so learning updates reprice the whole graph.
//
// Every revision bump appends one GraphDelta record to a bounded
// journal, so snapshot holders can ask "what changed since revision R"
// (DeltaSince) and, when the answer is edge mutations only, skip the
// full query-graph re-expansion. Journal overflow reports truncation,
// which consumers treat as "assume anything changed" (rebuild fallback).
class SearchGraph {
 public:
  SearchGraph() = default;

  // --- construction -------------------------------------------------------
  NodeId AddNode(NodeKind kind, std::string label,
                 relational::AttributeId attr = {});

  // Adds (or finds) the relation node for a schema and one attribute node
  // per attribute, with zero-cost membership edges.
  NodeId AddRelation(const relational::RelationSchema& schema);

  EdgeId AddEdge(Edge edge);

  // Adds an association edge between two attribute nodes, merging the
  // matcher score into an existing association edge for the same pair if
  // present (returns that edge). `features` are only applied when the edge
  // is new; use RebuildAssociationFeatures-style helpers to refresh.
  EdgeId AddAssociationEdge(NodeId a, NodeId b, FeatureVec features,
                            MatcherScore score);

  // --- lookup -------------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) {
    Journal(GraphDeltaKind::kNodeMutated, id);
    return nodes_[id];
  }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  Edge& mutable_edge(EdgeId id) {
    Journal(GraphDeltaKind::kEdgeMutated, id);
    return edges_[id];
  }

  // Monotone mutation counter: bumped by every AddNode/AddEdge and by each
  // mutable_node/mutable_edge access (conservatively — the caller may
  // mutate through the returned reference). Snapshot consumers (the
  // RefreshEngine's CSR snapshots) compare revisions to detect that a
  // graph changed underneath them without requiring explicit notification
  // from every mutation site.
  std::uint64_t revision() const { return journal_.revision(); }

  // Appends the journal records for revisions (since_revision,
  // revision()] to `out` (oldest first, one record per revision).
  // Returns false when the journal no longer reaches back to
  // `since_revision` (overflow): the caller must then assume arbitrary
  // structural change. Records are conservative — a kEdgeMutated entry
  // means "this edge may differ", not that it does.
  bool DeltaSince(std::uint64_t since_revision,
                  std::vector<GraphDelta>* out) const {
    return journal_.DeltaSince(since_revision, out);
  }

  // Oldest revision DeltaSince can still answer from.
  std::uint64_t journal_base_revision() const {
    return journal_.base_revision();
  }

  // Journal capacity (records). Shrinking it below the current journal
  // size takes effect on the next mutation.
  void set_max_journal_entries(std::size_t n) { journal_.set_max_entries(n); }

  // Persistence support (src/persist): reinstates the journal exactly as
  // saved, discarding the bookkeeping noise AddNode/AddEdge generated
  // while the loader reconstructed the topology. Afterwards revision()
  // and DeltaSince answer exactly as they did at save time.
  void RestoreJournal(std::uint64_t base_revision,
                      std::vector<GraphDelta> records) {
    journal_.Restore(base_revision, std::move(records));
  }

  // The saved journal slice (revisions (journal_base_revision(),
  // revision()]).
  std::vector<GraphDelta> JournalRecords() const {
    std::vector<GraphDelta> out;
    journal_.DeltaSince(journal_.base_revision(), &out);
    return out;
  }

  const std::vector<EdgeId>& edges_of(NodeId id) const {
    return adjacency_[id];
  }

  // Node of given kind with the given label, if any.
  std::optional<NodeId> FindNode(NodeKind kind, std::string_view label) const;

  std::optional<NodeId> FindRelationNode(
      std::string_view qualified_name) const {
    return FindNode(NodeKind::kRelation, qualified_name);
  }
  std::optional<NodeId> FindAttributeNode(
      const relational::AttributeId& id) const {
    return FindNode(NodeKind::kAttribute, id.ToString());
  }

  // Existing association edge between the two nodes, if any.
  std::optional<EdgeId> FindAssociation(NodeId a, NodeId b) const;

  // The relation node an attribute/value node belongs to (via membership
  // edges); for relation nodes, the node itself.
  std::optional<NodeId> OwningRelation(NodeId id) const;

  // All edge ids of a given kind.
  std::vector<EdgeId> EdgesOfKind(EdgeKind kind) const;

  // --- costs --------------------------------------------------------------
  double EdgeCost(EdgeId id, const WeightVector& weights) const {
    const Edge& e = edges_[id];
    if (e.fixed_zero) return 0.0;
    double c = weights.Dot(e.features);
    return c < kMinEdgeCost ? kMinEdgeCost : c;
  }

  // Multi-source Dijkstra: starts from (node, initial cost) seeds and
  // explores until `max_cost` (inclusive); returns distances for reached
  // nodes (infinity elsewhere). Used for the alpha-cost neighborhood of
  // Algorithm 2 and for the metric closure in Steiner solvers.
  std::vector<double> Dijkstra(
      const std::vector<std::pair<NodeId, double>>& seeds,
      const WeightVector& weights,
      double max_cost = std::numeric_limits<double>::infinity()) const;

 private:
  // Bumps the revision and appends the matching journal record; every
  // mutation site funnels through here so revision and journal can never
  // drift apart.
  void Journal(GraphDeltaKind kind, std::uint32_t id) {
    journal_.Append(GraphDelta{kind, id});
  }

  static constexpr std::size_t kDefaultMaxJournalEntries = 1 << 16;

  util::DeltaJournal<GraphDelta> journal_{kDefaultMaxJournalEntries};
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
  // (kind, label) -> node
  std::unordered_map<std::string, NodeId> node_index_;
  // min(u,v) << 32 | max(u,v) -> association edge
  std::unordered_map<std::uint64_t, EdgeId> association_index_;

  static std::string IndexKey(NodeKind kind, std::string_view label);
  static std::uint64_t PairKey(NodeId a, NodeId b);
};

}  // namespace q::graph

#endif  // Q_GRAPH_SEARCH_GRAPH_H_
