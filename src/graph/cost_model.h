#ifndef Q_GRAPH_COST_MODEL_H_
#define Q_GRAPH_COST_MODEL_H_

#include <string>
#include <string_view>

#include "graph/feature.h"

namespace q::graph {

// Knobs for how edge features are constructed and initially weighted
// (Sec. 3.4). All "costs" here are *initial weights*; MIRA re-learns them
// from feedback.
struct CostModelConfig {
  // Initial weight of the shared default feature (a uniform offset added
  // to every learnable edge, also MIRA's positivity lever).
  double default_cost = 0.1;
  // Initial weight of the foreign-key kind feature (the paper's default
  // foreign key cost c_d, modulo the shared default offset).
  double foreign_key_cost = 1.0;
  // Scale of matcher-confidence bin weights: a confidence c contributes
  // about matcher_scale * (1 - c) to the initial edge cost.
  double matcher_scale = 2.0;
  // Scale of keyword mismatch-cost bin weights: a mismatch s contributes
  // about keyword_scale * s.
  double keyword_scale = 1.0;
  // Number of equal-width bins for real-valued features (Sec. 4).
  int num_bins = 10;
  // Default relation authoritativeness; the per-relation feature weight is
  // initialized to -log(authoritativeness) (0 for 1.0).
  double default_authoritativeness = 1.0;
};

// Builds feature vectors for each edge kind against a shared FeatureSpace.
// The same feature names always map to the same ids, so edges created at
// different times share learnable weights (e.g. all edges proposed by the
// MAD matcher with confidence in the same bin).
class CostModel {
 public:
  CostModel(FeatureSpace* space, CostModelConfig config);

  const CostModelConfig& config() const { return config_; }
  FeatureSpace* space() { return space_; }

  // Association edge features: default + matcher confidence bin +
  // both relation authoritativeness features + a per-edge feature
  // (edge_key should be canonical for the attribute pair).
  FeatureVec AssociationFeatures(std::string_view matcher_name,
                                 double confidence,
                                 std::string_view relation_a,
                                 std::string_view relation_b,
                                 std::string_view edge_key);

  // Only the matcher-confidence bin indicator, used when merging a second
  // matcher's vote into an existing association edge.
  FeatureVec MatcherConfidenceFeature(std::string_view matcher_name,
                                      double confidence);

  // Penalty feature carried by association edges a given matcher did NOT
  // propose ("matcher m is silent about this pair"). Without it, an edge
  // proposed by one matcher would read as maximally confident for every
  // other matcher, making single-matcher junk cheaper than alignments
  // both matchers agree on. Initial weight: one matcher_scale (worse than
  // any real vote).
  FeatureId MatcherMissingFeature(std::string_view matcher_name);

  // Foreign-key edge features: default + fk-kind + per-edge.
  FeatureVec ForeignKeyFeatures(std::string_view edge_key);

  // Keyword-match edge features: default + mismatch-cost bin + owning
  // relation feature + per-edge.
  FeatureVec KeywordMatchFeatures(double mismatch_cost,
                                  std::string_view relation,
                                  std::string_view edge_key);

  // Interns (or finds) the per-relation authoritativeness feature.
  FeatureId RelationFeature(std::string_view qualified_relation);

 private:
  FeatureSpace* space_;
  CostModelConfig config_;
};

}  // namespace q::graph

#endif  // Q_GRAPH_COST_MODEL_H_
