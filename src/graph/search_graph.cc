#include "graph/search_graph.h"

#include "util/dary_heap.h"

namespace q::graph {

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRelation:
      return "relation";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kValue:
      return "value";
    case NodeKind::kKeyword:
      return "keyword";
  }
  return "?";
}

std::string_view EdgeKindToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kMembership:
      return "membership";
    case EdgeKind::kForeignKey:
      return "foreign_key";
    case EdgeKind::kAssociation:
      return "association";
    case EdgeKind::kKeywordMatch:
      return "keyword_match";
    case EdgeKind::kValueMembership:
      return "value_membership";
  }
  return "?";
}

std::string SearchGraph::IndexKey(NodeKind kind, std::string_view label) {
  std::string key;
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += '\x1f';
  key += label;
  return key;
}

std::uint64_t SearchGraph::PairKey(NodeId a, NodeId b) {
  NodeId lo = a < b ? a : b;
  NodeId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

NodeId SearchGraph::AddNode(NodeKind kind, std::string label,
                            relational::AttributeId attr) {
  std::string key = IndexKey(kind, label);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  Journal(GraphDeltaKind::kNodeAdded, id);
  nodes_.push_back(Node{kind, std::move(label), std::move(attr)});
  adjacency_.emplace_back();
  node_index_.emplace(std::move(key), id);
  return id;
}

NodeId SearchGraph::AddRelation(const relational::RelationSchema& schema) {
  NodeId rel = AddNode(
      NodeKind::kRelation, schema.QualifiedName(),
      relational::AttributeId{schema.source(), schema.relation(), ""});
  for (std::size_t i = 0; i < schema.num_attributes(); ++i) {
    relational::AttributeId attr_id = schema.IdOf(i);
    std::string label = attr_id.ToString();
    bool existed = FindNode(NodeKind::kAttribute, label).has_value();
    NodeId attr = AddNode(NodeKind::kAttribute, std::move(label),
                          std::move(attr_id));
    if (!existed) {
      Edge membership;
      membership.u = rel;
      membership.v = attr;
      membership.kind = EdgeKind::kMembership;
      membership.fixed_zero = true;
      AddEdge(std::move(membership));
    }
  }
  return rel;
}

EdgeId SearchGraph::AddEdge(Edge edge) {
  Q_CHECK(edge.u < nodes_.size() && edge.v < nodes_.size());
  Q_CHECK(edge.u != edge.v);
  EdgeId id = static_cast<EdgeId>(edges_.size());
  Journal(GraphDeltaKind::kEdgeAdded, id);
  adjacency_[edge.u].push_back(id);
  adjacency_[edge.v].push_back(id);
  if (edge.kind == EdgeKind::kAssociation) {
    association_index_.emplace(PairKey(edge.u, edge.v), id);
  }
  edges_.push_back(std::move(edge));
  return id;
}

EdgeId SearchGraph::AddAssociationEdge(NodeId a, NodeId b,
                                       FeatureVec features,
                                       MatcherScore score) {
  Q_CHECK(nodes_[a].kind == NodeKind::kAttribute);
  Q_CHECK(nodes_[b].kind == NodeKind::kAttribute);
  auto existing = FindAssociation(a, b);
  if (existing.has_value()) {
    // Feature merge below changes the edge's cost; an in-place mutation
    // of an existing edge, so the delta pipeline can reprice just it.
    Journal(GraphDeltaKind::kEdgeMutated, *existing);
    Edge& e = edges_[*existing];
    // Merge the new matcher's features (its confidence-bin indicator) into
    // the edge and record the vote.
    e.features.AddScaled(features, 1.0);
    // Deduplicate votes from the same matcher: keep the max confidence.
    for (auto& p : e.provenance) {
      if (p.matcher == score.matcher) {
        p.confidence = std::max(p.confidence, score.confidence);
        return *existing;
      }
    }
    e.provenance.push_back(std::move(score));
    return *existing;
  }
  Edge edge;
  edge.u = a;
  edge.v = b;
  edge.kind = EdgeKind::kAssociation;
  edge.features = std::move(features);
  edge.provenance.push_back(std::move(score));
  return AddEdge(std::move(edge));
}

std::optional<NodeId> SearchGraph::FindNode(NodeKind kind,
                                            std::string_view label) const {
  auto it = node_index_.find(IndexKey(kind, label));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> SearchGraph::FindAssociation(NodeId a, NodeId b) const {
  auto it = association_index_.find(PairKey(a, b));
  if (it == association_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> SearchGraph::OwningRelation(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.kind == NodeKind::kRelation) return id;
  if (n.kind == NodeKind::kAttribute) {
    for (EdgeId eid : adjacency_[id]) {
      const Edge& e = edges_[eid];
      if (e.kind != EdgeKind::kMembership) continue;
      NodeId other = e.Other(id);
      if (nodes_[other].kind == NodeKind::kRelation) return other;
    }
    return std::nullopt;
  }
  if (n.kind == NodeKind::kValue) {
    for (EdgeId eid : adjacency_[id]) {
      const Edge& e = edges_[eid];
      if (e.kind != EdgeKind::kValueMembership) continue;
      return OwningRelation(e.Other(id));
    }
  }
  return std::nullopt;
}

std::vector<EdgeId> SearchGraph::EdgesOfKind(EdgeKind kind) const {
  std::vector<EdgeId> out;
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    if (edges_[i].kind == kind) out.push_back(i);
  }
  return out;
}

std::vector<double> SearchGraph::Dijkstra(
    const std::vector<std::pair<NodeId, double>>& seeds,
    const WeightVector& weights, double max_cost) const {
  std::vector<double> dist(nodes_.size(),
                           std::numeric_limits<double>::infinity());
  // Indexed heap: every reached node is popped exactly once (no stale
  // lazy-deletion entries re-expanding it), and the per-call scratch is
  // reused across calls so the frontier does no steady-state allocation.
  thread_local util::DaryHeap frontier;
  frontier.Reset(nodes_.size());
  for (const auto& [node, cost] : seeds) {
    if (cost <= max_cost && cost < dist[node]) {
      dist[node] = cost;
      frontier.PushOrDecrease(node, cost);
    }
  }
  while (!frontier.empty()) {
    auto [d, n] = frontier.PopMin();
    for (EdgeId eid : adjacency_[n]) {
      const Edge& e = edges_[eid];
      double next = d + EdgeCost(eid, weights);
      NodeId m = e.Other(n);
      if (next <= max_cost && next < dist[m]) {
        dist[m] = next;
        frontier.PushOrDecrease(m, next);
      }
    }
  }
  return dist;
}

}  // namespace q::graph
