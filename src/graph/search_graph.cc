#include "graph/search_graph.h"

#include <cstring>

#include "util/dary_heap.h"

namespace q::graph {

namespace {

// Heap bytes held by a std::string beyond the object itself (SSO-aware).
std::size_t StringHeapBytes(const std::string& s) {
  constexpr std::size_t kSsoCapacity = 15;
  return s.capacity() > kSsoCapacity ? s.capacity() + 1 : 0;
}

std::size_t AttributeIdBytes(const relational::AttributeId& a) {
  return sizeof(a) + StringHeapBytes(a.source) + StringHeapBytes(a.relation) +
         StringHeapBytes(a.attribute);
}

// Rough estimate for an unordered_map's internal footprint (nodes +
// bucket array), excluding heap owned by the key/value payloads.
template <typename Map>
std::size_t HashMapBytes(const Map& map) {
  using Value = typename Map::value_type;
  return map.size() * (sizeof(Value) + 2 * sizeof(void*)) +
         map.bucket_count() * sizeof(void*);
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t HashFeatureVec(const FeatureVec& vec) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const auto& [id, value] : vec.entries()) {
    h = MixHash(h, id);
    h = MixHash(h, DoubleBits(value));
  }
  return h;
}

std::uint64_t HashProvenance(const std::vector<MatcherScore>& list) {
  std::uint64_t h = 0x13198a2e03707344ull;
  for (const MatcherScore& s : list) {
    h = MixHash(h, std::hash<std::string>{}(s.matcher));
    h = MixHash(h, DoubleBits(s.confidence));
  }
  return h;
}

bool IsEmptyAttr(const relational::AttributeId& a) {
  return a.source.empty() && a.relation.empty() && a.attribute.empty();
}

const relational::AttributeId& EmptyAttr() {
  static const relational::AttributeId kEmpty;
  return kEmpty;
}

const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

}  // namespace

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRelation:
      return "relation";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kValue:
      return "value";
    case NodeKind::kKeyword:
      return "keyword";
  }
  return "?";
}

std::string_view EdgeKindToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kMembership:
      return "membership";
    case EdgeKind::kForeignKey:
      return "foreign_key";
    case EdgeKind::kAssociation:
      return "association";
    case EdgeKind::kKeywordMatch:
      return "keyword_match";
    case EdgeKind::kValueMembership:
      return "value_membership";
  }
  return "?";
}

// --- pools -----------------------------------------------------------------

std::uint32_t FeatureVecPool::Intern(FeatureVec vec) {
  if (vec.empty()) return kEmpty;
  std::uint64_t h = HashFeatureVec(vec);
  std::vector<std::uint32_t>& bucket = by_hash_[h];
  for (std::uint32_t id : bucket) {
    if (vecs_[id] == vec) return id;
  }
  std::uint32_t id = static_cast<std::uint32_t>(vecs_.size());
  vecs_.push_back(std::move(vec));
  bucket.push_back(id);
  return id;
}

std::size_t FeatureVecPool::MemoryUsage() const {
  std::size_t bytes = vecs_.capacity() * sizeof(FeatureVec);
  for (const FeatureVec& v : vecs_) {
    bytes += v.entries().capacity() * sizeof(std::pair<FeatureId, double>);
  }
  bytes += HashMapBytes(by_hash_);
  for (const auto& [h, bucket] : by_hash_) {
    bytes += bucket.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

std::uint32_t ProvenancePool::Intern(std::vector<MatcherScore> list) {
  if (list.empty()) return kEmpty;
  std::uint64_t h = HashProvenance(list);
  std::vector<std::uint32_t>& bucket = by_hash_[h];
  for (std::uint32_t id : bucket) {
    if (lists_[id] == list) return id;
  }
  std::uint32_t id = static_cast<std::uint32_t>(lists_.size());
  lists_.push_back(std::move(list));
  bucket.push_back(id);
  return id;
}

std::size_t ProvenancePool::MemoryUsage() const {
  std::size_t bytes = lists_.capacity() * sizeof(std::vector<MatcherScore>);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(MatcherScore);
    for (const MatcherScore& s : list) bytes += StringHeapBytes(s.matcher);
  }
  bytes += HashMapBytes(by_hash_);
  for (const auto& [h, bucket] : by_hash_) {
    bytes += bucket.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

// --- SearchGraph -----------------------------------------------------------

std::string SearchGraph::IndexKey(NodeKind kind, std::string_view label) {
  std::string key;
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += '\x1f';
  key += label;
  return key;
}

std::uint64_t SearchGraph::PairKey(NodeId a, NodeId b) {
  NodeId lo = a < b ? a : b;
  NodeId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

NodeId SearchGraph::AddNode(NodeKind kind, std::string label,
                            relational::AttributeId attr) {
  std::string key = IndexKey(kind, label);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  Journal(GraphDeltaKind::kNodeAdded, id);
  nodes_.push_back(Node{kind, std::move(label), std::move(attr)});
  adj_.emplace_back();
  node_index_.emplace(std::move(key), id);
  return id;
}

NodeId SearchGraph::AddRelation(const relational::RelationSchema& schema) {
  NodeId rel = AddNode(
      NodeKind::kRelation, schema.QualifiedName(),
      relational::AttributeId{schema.source(), schema.relation(), ""});
  for (std::size_t i = 0; i < schema.num_attributes(); ++i) {
    relational::AttributeId attr_id = schema.IdOf(i);
    std::string label = attr_id.ToString();
    bool existed = FindNode(NodeKind::kAttribute, label).has_value();
    NodeId attr = AddNode(NodeKind::kAttribute, std::move(label),
                          std::move(attr_id));
    if (!existed) {
      Edge membership;
      membership.u = rel;
      membership.v = attr;
      membership.kind = EdgeKind::kMembership;
      membership.fixed_zero = true;
      AddEdge(std::move(membership));
    }
  }
  return rel;
}

void SearchGraph::AdjAppend(NodeId n, EdgeId e) {
  AdjSlot& slot = adj_[n];
  if (slot.count == slot.capacity) {
    std::uint32_t new_cap = slot.capacity == 0 ? 2 : slot.capacity * 2;
    std::uint32_t new_offset = static_cast<std::uint32_t>(adj_arena_.size());
    adj_arena_.resize(adj_arena_.size() + new_cap);
    if (slot.count != 0) {
      std::memcpy(adj_arena_.data() + new_offset,
                  adj_arena_.data() + slot.offset,
                  slot.count * sizeof(EdgeId));
    }
    slot.offset = new_offset;
    slot.capacity = new_cap;
  }
  adj_arena_[slot.offset + slot.count] = e;
  ++slot.count;
}

void SearchGraph::CompactAdjacency() {
  std::vector<EdgeId> tight;
  tight.reserve(2 * num_edges());
  for (AdjSlot& slot : adj_) {
    std::uint32_t new_offset = static_cast<std::uint32_t>(tight.size());
    tight.insert(tight.end(), adj_arena_.begin() + slot.offset,
                 adj_arena_.begin() + slot.offset + slot.count);
    slot.offset = new_offset;
    slot.capacity = slot.count;
  }
  adj_arena_ = std::move(tight);
}

EdgeId SearchGraph::AddEdge(Edge edge) {
  Q_CHECK(edge.u < nodes_.size() && edge.v < nodes_.size());
  Q_CHECK(edge.u != edge.v);
  EdgeId id = static_cast<EdgeId>(edge_u_.size());
  Journal(GraphDeltaKind::kEdgeAdded, id);
  AdjAppend(edge.u, id);
  AdjAppend(edge.v, id);
  if (edge.kind == EdgeKind::kAssociation) {
    association_index_.emplace(PairKey(edge.u, edge.v), id);
  }
  edge_u_.push_back(edge.u);
  edge_v_.push_back(edge.v);
  edge_kind_.push_back(static_cast<std::uint8_t>(edge.kind));
  edge_flags_.push_back(edge.fixed_zero ? kFlagFixedZero : 0);
  edge_feature_.push_back(feature_pool_.Intern(std::move(edge.features)));
  edge_prov_.push_back(prov_pool_.Intern(std::move(edge.provenance)));
  SetEdgeJoins(id, edge.join_a, edge.join_b);
  return id;
}

void SearchGraph::SetEdgeJoins(EdgeId id, const relational::AttributeId& a,
                               const relational::AttributeId& b) {
  if (IsEmptyAttr(a) && IsEmptyAttr(b)) {
    edge_joins_.erase(id);
  } else {
    edge_joins_[id] = {a, b};
  }
}

const relational::AttributeId& SearchGraph::edge_join_a(EdgeId id) const {
  auto it = edge_joins_.find(id);
  return it == edge_joins_.end() ? EmptyAttr() : it->second.first;
}

const relational::AttributeId& SearchGraph::edge_join_b(EdgeId id) const {
  auto it = edge_joins_.find(id);
  return it == edge_joins_.end() ? EmptyAttr() : it->second.second;
}

const std::string& SearchGraph::node_value_text(NodeId id) const {
  auto it = value_text_.find(id);
  return it == value_text_.end() ? EmptyString() : it->second;
}

Edge SearchGraph::ExportEdge(EdgeId id) const {
  Edge edge;
  edge.u = edge_u_[id];
  edge.v = edge_v_[id];
  edge.kind = static_cast<EdgeKind>(edge_kind_[id]);
  edge.fixed_zero = (edge_flags_[id] & kFlagFixedZero) != 0;
  edge.features = feature_pool_.at(edge_feature_[id]);
  edge.provenance = prov_pool_.at(edge_prov_[id]);
  edge.join_a = edge_join_a(id);
  edge.join_b = edge_join_b(id);
  return edge;
}

void SearchGraph::SetEdgeFeatures(EdgeId id, FeatureVec features) {
  Journal(GraphDeltaKind::kEdgeMutated, id);
  edge_feature_[id] = feature_pool_.Intern(std::move(features));
}

void SearchGraph::OverwriteEdge(EdgeId id, const Edge& src) {
  Q_CHECK(edge_u_[id] == src.u && edge_v_[id] == src.v);
  Q_CHECK(static_cast<EdgeKind>(edge_kind_[id]) == src.kind);
  Journal(GraphDeltaKind::kEdgeMutated, id);
  edge_flags_[id] = src.fixed_zero ? kFlagFixedZero : 0;
  edge_feature_[id] = feature_pool_.Intern(src.features);
  edge_prov_[id] = prov_pool_.Intern(src.provenance);
  SetEdgeJoins(id, src.join_a, src.join_b);
}

void SearchGraph::SetNodeValueText(NodeId id, std::string text) {
  Journal(GraphDeltaKind::kNodeMutated, id);
  if (text.empty()) {
    value_text_.erase(id);
  } else {
    value_text_[id] = std::move(text);
  }
}

EdgeId SearchGraph::AddAssociationEdge(NodeId a, NodeId b,
                                       FeatureVec features,
                                       MatcherScore score) {
  Q_CHECK(nodes_[a].kind == NodeKind::kAttribute);
  Q_CHECK(nodes_[b].kind == NodeKind::kAttribute);
  auto existing = FindAssociation(a, b);
  if (existing.has_value()) {
    // Feature merge below changes the edge's cost; an in-place mutation
    // of an existing edge, so the delta pipeline can reprice just it.
    Journal(GraphDeltaKind::kEdgeMutated, *existing);
    // Merge the new matcher's features (its confidence-bin indicator) into
    // the edge and record the vote. Pool entries are immutable: copy out,
    // edit, re-intern.
    FeatureVec merged = feature_pool_.at(edge_feature_[*existing]);
    merged.AddScaled(features, 1.0);
    edge_feature_[*existing] = feature_pool_.Intern(std::move(merged));
    // Deduplicate votes from the same matcher: keep the max confidence.
    std::vector<MatcherScore> votes = prov_pool_.at(edge_prov_[*existing]);
    bool found = false;
    for (auto& p : votes) {
      if (p.matcher == score.matcher) {
        p.confidence = std::max(p.confidence, score.confidence);
        found = true;
        break;
      }
    }
    if (!found) votes.push_back(std::move(score));
    edge_prov_[*existing] = prov_pool_.Intern(std::move(votes));
    return *existing;
  }
  Edge edge;
  edge.u = a;
  edge.v = b;
  edge.kind = EdgeKind::kAssociation;
  edge.features = std::move(features);
  edge.provenance.push_back(std::move(score));
  return AddEdge(std::move(edge));
}

std::optional<NodeId> SearchGraph::FindNode(NodeKind kind,
                                            std::string_view label) const {
  auto it = node_index_.find(IndexKey(kind, label));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> SearchGraph::FindAssociation(NodeId a, NodeId b) const {
  auto it = association_index_.find(PairKey(a, b));
  if (it == association_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> SearchGraph::OwningRelation(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.kind == NodeKind::kRelation) return id;
  if (n.kind == NodeKind::kAttribute) {
    for (EdgeId eid : edges_of(id)) {
      if (static_cast<EdgeKind>(edge_kind_[eid]) != EdgeKind::kMembership) {
        continue;
      }
      NodeId other = edge_u_[eid] == id ? edge_v_[eid] : edge_u_[eid];
      if (nodes_[other].kind == NodeKind::kRelation) return other;
    }
    return std::nullopt;
  }
  if (n.kind == NodeKind::kValue) {
    for (EdgeId eid : edges_of(id)) {
      if (static_cast<EdgeKind>(edge_kind_[eid]) !=
          EdgeKind::kValueMembership) {
        continue;
      }
      NodeId other = edge_u_[eid] == id ? edge_v_[eid] : edge_u_[eid];
      return OwningRelation(other);
    }
  }
  return std::nullopt;
}

std::vector<EdgeId> SearchGraph::EdgesOfKind(EdgeKind kind) const {
  std::vector<EdgeId> out;
  for (EdgeId i = 0; i < edge_kind_.size(); ++i) {
    if (static_cast<EdgeKind>(edge_kind_[i]) == kind) out.push_back(i);
  }
  return out;
}

MemoryBreakdown SearchGraph::MemoryUsage() const {
  MemoryBreakdown mb;

  mb.nodes_bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    mb.nodes_bytes += StringHeapBytes(n.label);
    mb.nodes_bytes += AttributeIdBytes(n.attr) - sizeof(n.attr);
  }
  mb.nodes_bytes += HashMapBytes(value_text_);
  for (const auto& [id, text] : value_text_) {
    mb.nodes_bytes += StringHeapBytes(text);
  }

  mb.node_index_bytes = HashMapBytes(node_index_);
  for (const auto& [key, id] : node_index_) {
    mb.node_index_bytes += StringHeapBytes(key);
  }

  mb.edges_bytes = edge_u_.capacity() * sizeof(NodeId) +
                   edge_v_.capacity() * sizeof(NodeId) +
                   edge_kind_.capacity() + edge_flags_.capacity() +
                   edge_feature_.capacity() * sizeof(std::uint32_t) +
                   edge_prov_.capacity() * sizeof(std::uint32_t);
  mb.edges_bytes += HashMapBytes(edge_joins_);
  for (const auto& [id, joins] : edge_joins_) {
    mb.edges_bytes += AttributeIdBytes(joins.first) - sizeof(joins.first);
    mb.edges_bytes += AttributeIdBytes(joins.second) - sizeof(joins.second);
  }
  mb.edges_bytes += HashMapBytes(association_index_);

  mb.adjacency_bytes = adj_.capacity() * sizeof(AdjSlot) +
                       adj_arena_.capacity() * sizeof(EdgeId);

  mb.feature_pool_bytes = feature_pool_.MemoryUsage();
  mb.provenance_bytes = prov_pool_.MemoryUsage();

  mb.journal_bytes =
      static_cast<std::size_t>(journal_.revision() -
                               journal_.base_revision()) *
      sizeof(GraphDelta);
  return mb;
}

void SearchGraph::Dijkstra(const std::vector<std::pair<NodeId, double>>& seeds,
                           const WeightVector& weights, double max_cost,
                           DistanceField* out) const {
  out->Reset(nodes_.size());
  std::vector<double>& dist = out->dist_;
  // Indexed heap: every reached node is popped exactly once (no stale
  // lazy-deletion entries re-expanding it), and the per-call scratch is
  // reused across calls so the frontier does no steady-state allocation.
  thread_local util::DaryHeap frontier;
  frontier.Reset(nodes_.size());
  for (const auto& [node, cost] : seeds) {
    if (cost <= max_cost && cost < dist[node]) {
      dist[node] = cost;
      frontier.PushOrDecrease(node, cost);
    }
  }
  while (!frontier.empty()) {
    auto [d, n] = frontier.PopMin();
    out->reached_.push_back(static_cast<NodeId>(n));
    for (EdgeId eid : edges_of(static_cast<NodeId>(n))) {
      double next = d + EdgeCost(eid, weights);
      NodeId m = edge_u_[eid] == static_cast<NodeId>(n) ? edge_v_[eid]
                                                        : edge_u_[eid];
      if (next <= max_cost && next < dist[m]) {
        dist[m] = next;
        frontier.PushOrDecrease(m, next);
      }
    }
  }
}

std::vector<double> SearchGraph::Dijkstra(
    const std::vector<std::pair<NodeId, double>>& seeds,
    const WeightVector& weights, double max_cost) const {
  thread_local DistanceField field;
  Dijkstra(seeds, weights, max_cost, &field);
  std::vector<double> dist(nodes_.size(),
                           std::numeric_limits<double>::infinity());
  for (NodeId n : field.reached()) dist[n] = field.At(n);
  return dist;
}

}  // namespace q::graph
