#ifndef Q_RELATIONAL_TABLE_H_
#define Q_RELATIONAL_TABLE_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"
#include "util/status.h"

namespace q::relational {

using Row = std::vector<Value>;

// In-memory row-store table. Rows are immutable once appended.
class Table {
 public:
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  // For post-construction metadata edits (e.g. declaring foreign keys).
  RelationSchema& mutable_schema() { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return schema_.num_attributes(); }

  // Appends after checking arity and per-column type (nulls always pass).
  util::Status AppendRow(Row row);

  const Row& row(std::size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  const Value& At(std::size_t row_index, std::size_t col_index) const {
    return rows_[row_index][col_index];
  }

  // Distinct non-null values in a column.
  std::unordered_set<Value, ValueHash> DistinctValues(
      std::size_t col_index) const;

  // Count of distinct shared non-null values between a column of this
  // table and a column of `other`.
  std::size_t ValueOverlap(std::size_t col_index, const Table& other,
                           std::size_t other_col_index) const;

 private:
  RelationSchema schema_;
  std::vector<Row> rows_;
};

}  // namespace q::relational

#endif  // Q_RELATIONAL_TABLE_H_
