#include "relational/table.h"

#include <utility>

namespace q::relational {

util::Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return util::Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()) + " for relation " +
        schema_.QualifiedName());
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.attributes()[i].type) {
      return util::Status::InvalidArgument(
          "type mismatch in column " + schema_.attributes()[i].name +
          " of " + schema_.QualifiedName() + ": expected " +
          std::string(ValueTypeToString(schema_.attributes()[i].type)) +
          ", got " + std::string(ValueTypeToString(row[i].type())));
    }
  }
  rows_.push_back(std::move(row));
  return util::Status::OK();
}

std::unordered_set<Value, ValueHash> Table::DistinctValues(
    std::size_t col_index) const {
  std::unordered_set<Value, ValueHash> out;
  for (const Row& r : rows_) {
    if (!r[col_index].is_null()) out.insert(r[col_index]);
  }
  return out;
}

std::size_t Table::ValueOverlap(std::size_t col_index, const Table& other,
                                std::size_t other_col_index) const {
  auto mine = DistinctValues(col_index);
  std::size_t shared = 0;
  std::unordered_set<Value, ValueHash> seen;
  for (const Row& r : other.rows()) {
    const Value& v = r[other_col_index];
    if (v.is_null() || seen.count(v) > 0) continue;
    seen.insert(v);
    if (mine.count(v) > 0) ++shared;
  }
  return shared;
}

}  // namespace q::relational
