#ifndef Q_RELATIONAL_VALUE_H_
#define Q_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace q::relational {

enum class ValueType { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

std::string_view ValueTypeToString(ValueType type);

// A typed database cell. Small tagged union; strings own their storage.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(std::int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Preconditions: matching type.
  std::int64_t AsInt64() const { return std::get<std::int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  // Canonical textual form used for indexing, joining by value overlap and
  // display. Integers render without decimals; null renders as "".
  std::string ToText() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order across types (by type tag first) so values can key maps.
  bool operator<(const Value& other) const;

  std::size_t Hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace q::relational

#endif  // Q_RELATIONAL_VALUE_H_
