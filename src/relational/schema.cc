#include "relational/schema.h"

namespace q::relational {

std::optional<std::size_t> RelationSchema::AttributeIndex(
    std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace q::relational
