#ifndef Q_RELATIONAL_SCHEMA_H_
#define Q_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"
#include "util/result.h"

namespace q::relational {

// Fully qualified attribute identity: source.relation.attribute.
struct AttributeId {
  std::string source;
  std::string relation;
  std::string attribute;

  std::string ToString() const {
    return source + "." + relation + "." + attribute;
  }
  std::string RelationQualifiedName() const {
    return source + "." + relation;
  }

  bool operator==(const AttributeId& o) const {
    return source == o.source && relation == o.relation &&
           attribute == o.attribute;
  }
  bool operator<(const AttributeId& o) const {
    if (source != o.source) return source < o.source;
    if (relation != o.relation) return relation < o.relation;
    return attribute < o.attribute;
  }
};

struct AttributeIdHash {
  std::size_t operator()(const AttributeId& a) const {
    std::size_t h = std::hash<std::string>{}(a.source);
    h = h * 31 + std::hash<std::string>{}(a.relation);
    h = h * 31 + std::hash<std::string>{}(a.attribute);
    return h;
  }
};

// One column definition.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
};

// Declared key-foreign-key relationship from one attribute of this
// relation to an attribute of a (possibly different) relation.
struct ForeignKey {
  std::string local_attribute;
  std::string ref_source;
  std::string ref_relation;
  std::string ref_attribute;
};

// Schema of one relation (table) inside a data source.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string source, std::string relation,
                 std::vector<AttributeDef> attributes)
      : source_(std::move(source)),
        relation_(std::move(relation)),
        attributes_(std::move(attributes)) {}

  const std::string& source() const { return source_; }
  const std::string& relation() const { return relation_; }
  std::string QualifiedName() const { return source_ + "." + relation_; }

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  std::size_t num_attributes() const { return attributes_.size(); }

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }
  void AddForeignKey(ForeignKey fk) {
    foreign_keys_.push_back(std::move(fk));
  }

  // Index of the named attribute, or nullopt.
  std::optional<std::size_t> AttributeIndex(std::string_view name) const;

  AttributeId IdOf(std::size_t index) const {
    return AttributeId{source_, relation_, attributes_[index].name};
  }

 private:
  std::string source_;
  std::string relation_;
  std::vector<AttributeDef> attributes_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace q::relational

#endif  // Q_RELATIONAL_SCHEMA_H_
