#include "relational/catalog.h"

namespace q::relational {

util::Status DataSource::AddTable(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return util::Status::InvalidArgument("null table");
  }
  if (table->schema().source() != name_) {
    return util::Status::InvalidArgument(
        "table " + table->schema().QualifiedName() +
        " does not belong to source " + name_);
  }
  const std::string& relation = table->schema().relation();
  if (by_name_.count(relation) > 0) {
    return util::Status::AlreadyExists("relation " + relation +
                                       " already in source " + name_);
  }
  by_name_[relation] = tables_.size();
  tables_.push_back(std::move(table));
  return util::Status::OK();
}

std::shared_ptr<Table> DataSource::FindTable(
    std::string_view relation) const {
  auto it = by_name_.find(std::string(relation));
  if (it == by_name_.end()) return nullptr;
  return tables_[it->second];
}

std::size_t DataSource::num_attributes() const {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t->schema().num_attributes();
  return n;
}

util::Status Catalog::AddSource(std::shared_ptr<DataSource> source) {
  if (source == nullptr) {
    return util::Status::InvalidArgument("null source");
  }
  if (by_name_.count(source->name()) > 0) {
    return util::Status::AlreadyExists("source " + source->name() +
                                       " already registered");
  }
  by_name_[source->name()] = sources_.size();
  sources_.push_back(std::move(source));
  return util::Status::OK();
}

std::shared_ptr<DataSource> Catalog::FindSource(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  return sources_[it->second];
}

std::shared_ptr<Table> Catalog::FindTable(
    std::string_view qualified_name) const {
  auto dot = qualified_name.find('.');
  if (dot == std::string_view::npos) return nullptr;
  return FindTable(qualified_name.substr(0, dot),
                   qualified_name.substr(dot + 1));
}

std::shared_ptr<Table> Catalog::FindTable(std::string_view source,
                                          std::string_view relation) const {
  auto src = FindSource(source);
  if (src == nullptr) return nullptr;
  return src->FindTable(relation);
}

util::Result<std::size_t> Catalog::ResolveAttribute(
    const AttributeId& id) const {
  auto table = FindTable(id.source, id.relation);
  if (table == nullptr) {
    return util::Status::NotFound("relation " + id.RelationQualifiedName());
  }
  auto idx = table->schema().AttributeIndex(id.attribute);
  if (!idx.has_value()) {
    return util::Status::NotFound("attribute " + id.ToString());
  }
  return *idx;
}

std::size_t Catalog::num_relations() const {
  std::size_t n = 0;
  for (const auto& s : sources_) n += s->tables().size();
  return n;
}

std::size_t Catalog::num_attributes() const {
  std::size_t n = 0;
  for (const auto& s : sources_) n += s->num_attributes();
  return n;
}

std::vector<std::shared_ptr<Table>> Catalog::AllTables() const {
  std::vector<std::shared_ptr<Table>> out;
  for (const auto& s : sources_) {
    for (const auto& t : s->tables()) out.push_back(t);
  }
  return out;
}

}  // namespace q::relational
