#include "relational/value.h"

#include <cmath>
#include <cstdio>

namespace q::relational {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToText() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return std::string(buf);
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return AsInt64() < other.AsInt64();
    case ValueType::kDouble:
      return AsDouble() < other.AsDouble();
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

std::size_t Value::Hash() const {
  // Mix the type tag so Value(0) and Value("") hash differently.
  std::size_t seed = static_cast<std::size_t>(type()) * 0x9E3779B97F4A7C15ULL;
  switch (type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kInt64:
      return seed ^ std::hash<std::int64_t>{}(AsInt64());
    case ValueType::kDouble:
      return seed ^ std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return seed ^ std::hash<std::string>{}(AsString());
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  if (v.is_null()) return os << "NULL";
  return os << v.ToText();
}

}  // namespace q::relational
