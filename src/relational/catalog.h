#ifndef Q_RELATIONAL_CATALOG_H_
#define Q_RELATIONAL_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/table.h"
#include "util/result.h"

namespace q::relational {

// A registered data source: a named collection of tables (the paper
// models each source as one or more relations with metadata).
class DataSource {
 public:
  explicit DataSource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Takes ownership; relation names must be unique within the source and
  // the table's schema source must match this source's name.
  util::Status AddTable(std::shared_ptr<Table> table);

  const std::vector<std::shared_ptr<Table>>& tables() const {
    return tables_;
  }

  // Looks up by bare relation name.
  std::shared_ptr<Table> FindTable(std::string_view relation) const;

  std::size_t num_attributes() const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<Table>> tables_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

// The set of all registered sources; the substrate every other module
// queries. Sources are identified by unique name.
class Catalog {
 public:
  util::Status AddSource(std::shared_ptr<DataSource> source);

  const std::vector<std::shared_ptr<DataSource>>& sources() const {
    return sources_;
  }

  std::shared_ptr<DataSource> FindSource(std::string_view name) const;

  // Looks up "source.relation".
  std::shared_ptr<Table> FindTable(std::string_view qualified_name) const;
  std::shared_ptr<Table> FindTable(std::string_view source,
                                   std::string_view relation) const;

  // Resolves a fully qualified attribute; error if missing.
  util::Result<std::size_t> ResolveAttribute(const AttributeId& id) const;

  std::size_t num_relations() const;
  std::size_t num_attributes() const;

  // All tables across all sources, in registration order.
  std::vector<std::shared_ptr<Table>> AllTables() const;

 private:
  std::vector<std::shared_ptr<DataSource>> sources_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace q::relational

#endif  // Q_RELATIONAL_CATALOG_H_
