#include "core/async_refresh.h"

#include <algorithm>
#include <utility>

namespace q::core {

AsyncRefreshScheduler::AsyncRefreshScheduler(
    RefreshEngine* engine, util::ThreadPool* pool, int dedicated_threads,
    const graph::SearchGraph* base, const relational::Catalog* catalog,
    const text::TextIndex* index, graph::CostModel* model,
    const graph::WeightVector* weights, util::SharedMutex* serve_gate)
    : engine_(engine),
      owned_pool_(pool == nullptr || dedicated_threads > 0
                      ? std::make_unique<util::ThreadPool>(
                            std::max(1, dedicated_threads))
                      : nullptr),
      pool_(owned_pool_ != nullptr ? owned_pool_.get() : pool),
      base_(base),
      catalog_(catalog),
      index_(index),
      model_(model),
      weights_(weights),
      serve_gate_(serve_gate),
      queue_(pool_) {}

AsyncRefreshScheduler::~AsyncRefreshScheduler() { queue_.Drain(); }

void AsyncRefreshScheduler::TrackView(std::size_t slot,
                                      query::TopKView* view) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.size() <= slot) {
    views_.resize(slot + 1, nullptr);
    validated_.resize(slot + 1, 0);
  }
  views_[slot] = view;
  validated_[slot] = epoch_;
}

void AsyncRefreshScheduler::NotifyBaseChanged() {
  std::vector<std::size_t> repairs;
  std::vector<std::size_t> serial;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.feedback_rounds;
    ++epoch_;
    engine_->BeginAsyncRound(*base_, *weights_);
    for (std::size_t slot = 0; slot < views_.size(); ++slot) {
      if (queue_.Busy(slot)) {
        // A repair is in flight or parked: its engine slot is not safe to
        // classify from here, and it may have started from an older
        // frozen epoch. Queue another pass — the queue coalesces it away
        // if the pending one has not started yet.
        repairs.push_back(slot);
        continue;
      }
      switch (engine_->ClassifyViewForAsync(slot, *base_, *index_,
                                            *weights_)) {
        case AsyncViewClass::kUpToDate:
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kValidatedWithoutSearch:
          // Delta-proven no-op or relevance-gated: the published output
          // is provably what a fresh search would return, so the view is
          // fresh at this epoch without running one.
          ++stats_.validations_without_search;
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kSkippedIrrelevant:
          // Structural certificate proved a pending registration cannot
          // affect this view (possible here when feedback lands while a
          // gated registration's journals are still unreplayed).
          ++stats_.validations_without_search;
          ++stats_.structural_skips;
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kRepair:
          repairs.push_back(slot);
          break;
        case AsyncViewClass::kSerialOnly:
          serial.push_back(slot);
          break;
      }
    }
    if (!repairs.empty()) {
      // Freeze the weight vector for this epoch's repairs: the copy
      // equals the live vector (values and journal) right now and never
      // changes, so repairs can read it while the feedback thread keeps
      // applying MIRA updates to the live one. Skipped when every view
      // validated in place — the copy is O(features + journal) and would
      // sit on the ack's critical path for nothing. (Busy views are in
      // `repairs`, so any task that will re-run gets a fresh copy.)
      frozen_weights_ =
          std::make_shared<const graph::WeightVector>(*weights_);
    }
  }
  cv_.notify_all();

  if (!serial.empty()) {
    // Rebuilds mutate the shared feature space (and structural
    // propagation the cached query graph), which concurrent repairs may
    // be reading: quiesce first. The owner's feedback lock keeps new
    // notifications out while we run. Concurrent QueryView readers are
    // excluded by the serving gate — a rebuild replaces the slot's engine
    // and query graph, which a gate-free reader could be mid-search on.
    // (Taken after the drain: repair tasks never touch the gate, so the
    // drain cannot deadlock against it.)
    queue_.Drain();
    std::unique_lock<util::SharedMutex> serve_lock;
    if (serve_gate_ != nullptr) {
      serve_lock = std::unique_lock<util::SharedMutex>(*serve_gate_);
    }
    for (std::size_t slot : serial) {
      util::Status status = engine_->RefreshView(
          slot, *base_, *catalog_, *index_, model_, *weights_);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.serial_repairs;
      if (status.ok()) {
        validated_[slot] = epoch_;
      } else if (repair_error_.ok()) {
        repair_error_ = status;
      }
    }
    cv_.notify_all();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t slot : repairs) {
      ++stats_.repairs_scheduled;
      queue_.Submit(slot, [this, slot] { RepairOne(slot); });
    }
  }
}

util::Status AsyncRefreshScheduler::NotifyStructuralChange() {
  std::vector<std::size_t> repairs;
  std::vector<std::size_t> rebuilds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.structural_rounds;
    ++epoch_;
    engine_->BeginAsyncRound(*base_, *weights_);
    for (std::size_t slot = 0; slot < views_.size(); ++slot) {
      if (queue_.Busy(slot)) {
        // The caller quiesced before mutating the base, so this should
        // not happen; routed to the serial rebuild list for safety (a
        // busy slot's engine state cannot be classified from here).
        rebuilds.push_back(slot);
        continue;
      }
      switch (engine_->ClassifyViewForAsync(slot, *base_, *index_,
                                            *weights_)) {
        case AsyncViewClass::kUpToDate:
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kValidatedWithoutSearch:
          ++stats_.validations_without_search;
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kSkippedIrrelevant:
          // The whole point of the structural gate: this view's serving
          // state is untouched by the registration — no rebuild, no
          // search, not even a snapshot copy.
          ++stats_.validations_without_search;
          ++stats_.structural_skips;
          validated_[slot] = epoch_;
          break;
        case AsyncViewClass::kRepair:
          // Not produced by a graph-moved slot today (the structural
          // branch returns skip or serial), but handled like any repair
          // so a future classification refinement cannot strand a view.
          repairs.push_back(slot);
          break;
        case AsyncViewClass::kSerialOnly:
          rebuilds.push_back(slot);
          break;
      }
    }
  }
  cv_.notify_all();

  util::Status prepare_status = util::Status::OK();
  std::vector<std::size_t> searches;
  if (!rebuilds.empty()) {
    // The synchronous half of each failed-certificate view's repair:
    // query-graph re-expansion mutates the shared feature space and
    // replaces slot engines, so it runs here — queue drained (defensive;
    // the caller already quiesced), exclusive serving gate held. The
    // searches are NOT run here: PrepareStructuralRepair leaves each
    // slot dirty with its prepared revision recorded, and the ordinary
    // RepairOne task finishes it in place on the keyed queue (per-slot
    // ordering serializes it against any later repair of the same view).
    queue_.Drain();
    std::unique_lock<util::SharedMutex> serve_lock;
    if (serve_gate_ != nullptr) {
      serve_lock = std::unique_lock<util::SharedMutex>(*serve_gate_);
    }
    for (std::size_t slot : rebuilds) {
      auto need_search = engine_->PrepareStructuralRepair(
          slot, *base_, *index_, model_, *weights_);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.structural_rebuilds;
      if (!need_search.ok()) {
        if (repair_error_.ok()) repair_error_ = need_search.status();
        if (prepare_status.ok()) prepare_status = need_search.status();
      } else if (*need_search) {
        searches.push_back(slot);
      } else {
        validated_[slot] = epoch_;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!repairs.empty() || !searches.empty()) {
      // Freeze for the queued repairs (see NotifyBaseChanged). The
      // feedback lock is held by our caller, so the live vector cannot
      // move between the prepares above and this copy.
      frozen_weights_ =
          std::make_shared<const graph::WeightVector>(*weights_);
    }
    for (std::size_t slot : searches) {
      ++stats_.repairs_scheduled;
      queue_.Submit(slot, [this, slot] { RepairOne(slot); });
    }
    for (std::size_t slot : repairs) {
      ++stats_.repairs_scheduled;
      queue_.Submit(slot, [this, slot] { RepairOne(slot); });
    }
  }
  cv_.notify_all();
  return prepare_status;
}

void AsyncRefreshScheduler::RepairOne(std::size_t slot) {
  std::uint64_t target = 0;
  std::shared_ptr<const graph::WeightVector> frozen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.repairs_run;
    // Reconcile to the *latest* epoch, not the one that queued us: the
    // frozen copy carries the full journal, so a repair that absorbed
    // two feedback updates commits both — exactly what coalescing means.
    target = epoch_;
    frozen = frozen_weights_;
  }
  util::Status status =
      engine_->RepairViewAsync(slot, *base_, *catalog_, *frozen);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      validated_[slot] = std::max(validated_[slot], target);
    } else if (repair_error_.ok()) {
      // Sticky until a SyncBarrier repairs the view synchronously (its
      // slot never committed, so the barrier retries from scratch).
      repair_error_ = status;
    }
  }
  cv_.notify_all();
}

query::ViewResult AsyncRefreshScheduler::Read(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  query::ViewResult result;
  // Untracked slots read as empty (state == nullptr), not UB.
  if (slot >= views_.size() || views_[slot] == nullptr) return result;
  result.state = views_[slot]->Snapshot();
  result.generation = validated_[slot];
  result.stale = validated_[slot] < epoch_;
  return result;
}

bool AsyncRefreshScheduler::WaitFresh(std::size_t slot,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (slot >= views_.size() || views_[slot] == nullptr) return false;
  const std::uint64_t target = epoch_;
  cv_.wait_for(lock, timeout, [&] {
    return validated_[slot] >= target || !repair_error_.ok();
  });
  return validated_[slot] >= target;
}

util::Status AsyncRefreshScheduler::Drain() {
  queue_.Drain();
  std::lock_guard<std::mutex> lock(mu_);
  return repair_error_;
}

void AsyncRefreshScheduler::Quiesce() { queue_.Drain(); }

util::Status AsyncRefreshScheduler::SyncBarrier() {
  queue_.Drain();
  util::Status status =
      engine_->RefreshAll(*base_, *catalog_, *index_, model_, *weights_);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sync_barriers;
  ++epoch_;
  if (status.ok()) {
    for (std::size_t slot = 0; slot < validated_.size(); ++slot) {
      validated_[slot] = epoch_;
    }
    repair_error_ = util::Status::OK();
  } else if (repair_error_.ok()) {
    // A failed barrier bumps the epoch without validating anyone, so a
    // WaitFresh waiter's predicate could never become true — record the
    // failure so waiters wake with `false` now instead of burning their
    // full deadline (and so Drain surfaces the barrier's failure exactly
    // like a failed async repair's).
    repair_error_ = status;
  }
  cv_.notify_all();
  return status;
}

std::uint64_t AsyncRefreshScheduler::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

AsyncRefreshStats AsyncRefreshScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace q::core
