#ifndef Q_CORE_REFRESH_ENGINE_H_
#define Q_CORE_REFRESH_ENGINE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "query/view.h"
#include "relational/catalog.h"
#include "steiner/fast_solver.h"
#include "text/text_index.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace q::core {

// Outcome of testing one coalesced weight delta against a view's
// relevance certificate (see ClassifyDeltaRelevance).
struct RelevanceDecision {
  // The delta provably cannot change the view's output: skip the refresh
  // without touching the snapshot.
  bool skip = false;
  // Some repriced edge lies inside the certificate neighborhood.
  bool touched_certificate = false;
  // Total net cost decrease over edges outside the neighborhood.
  double net_decrease = 0.0;
};

// Applies the certificate's safety rule to a previewed delta (the
// would-be RepricedEdge set from FastSteinerEngine::PreviewDelta): the
// view may be skipped iff no repriced edge is in `cert.edges` and the
// summed decrease is zero (pure increases are always safe — returned
// trees keep bitwise-identical costs and every other tree only gets more
// expensive) or strictly inside `cert.gap` with a small relative margin
// (so no outside tree can reach, or float-tie with, the k-th returned
// cost; a delta landing exactly on the slack boundary falls through).
// `cert.valid` must be checked by the caller. Pure function, exposed for
// the boundary tests in tests/relevance_gating_test.cc.
RelevanceDecision ClassifyDeltaRelevance(
    const steiner::RelevanceCertificate& cert,
    const std::vector<steiner::RepricedEdge>& repriced);

// Outcome of testing one structural delta's attachment set (the
// pre-existing nodes where new topology meets the old graph) against a
// view's structural certificate (see ClassifyStructuralRelevance).
struct StructuralDecision {
  // Every attachment is provably too far from the anchor terminal for
  // any tree using new topology to enter the view's top-k: the
  // registration may skip this view without touching it.
  bool skip = false;
  // Some attachment sits within (or on the float margin of) the
  // reachable threshold kth_cost + net_decrease.
  bool attachment_reachable = false;
};

// Applies the structural certificate's safety rule: any candidate tree
// that uses new topology must walk from the anchor terminal to some
// attachment node over old edges first, so its cost is bounded below by
// the baseline anchor distance of that attachment (alpha_dist inside the
// ball, alpha_radius outside it). The view may skip iff EVERY attachment
// satisfies kth_cost + net_decrease < distance with the same slack
// margins as the weight gate — an attachment landing exactly on the
// boundary falls through (a tie at the k-th cost could re-rank under the
// deterministic tie-break). `net_decrease` is the concurrent weight
// delta's total decrease outside the certificate (0.0 when the weights
// did not move); with fewer than k answers (kth_cost == +inf) only an
// empty attachment set may skip. The caller must have checked
// cert.valid && cert.structural_valid and the keyword-match fingerprint;
// pure function, exposed for the boundary tests in
// tests/onboarding_test.cc.
StructuralDecision ClassifyStructuralRelevance(
    const steiner::RelevanceCertificate& cert,
    const std::vector<graph::NodeId>& attachments, double net_decrease);

// Aggregate counters for observability and the perf benches; cumulative
// over the engine's lifetime.
struct RefreshEngineStats {
  // Full snapshot builds: query-graph re-expansion + CSR extraction (the
  // *rebuild* classification, plus first-touch builds).
  std::size_t snapshots_built = 0;
  // In-place refreshes: CSR re-costed (delta or full), topology kept.
  std::size_t snapshots_recosted = 0;
  // Refreshes that ran no search: nothing moved since the view's last
  // refresh, or the delta provably touched nothing in its snapshot.
  std::size_t refreshes_skipped = 0;
  // Per-view top-k searches actually executed.
  std::size_t searches_run = 0;

  // --- delta-pipeline classification (per view, per refresh) -------------
  // The change journals proved no edge of the view's snapshot moved, so
  // the refresh was skipped with results provably identical (a subset of
  // refreshes_skipped).
  std::size_t views_skipped_delta = 0;
  // Snapshot repriced selectively via CsrGraph::RecostDelta.
  std::size_t views_delta_recost = 0;
  // Snapshot repriced wholesale via CsrGraph::Recost (journal truncated
  // or the delta was dense).
  std::size_t views_full_recost = 0;
  // Edge costs actually moved by delta re-costs.
  std::size_t edges_repriced = 0;

  // --- relevance gate (alpha-neighborhood gating) ------------------------
  // Views skipped because their relevance certificate proved the delta
  // cannot change their top-k output (the kSkippedIrrelevant class): the
  // delta repriced edges, but none inside the certificate neighborhood
  // and any net decrease stayed strictly inside the slack. Unlike
  // views_skipped_delta, the snapshot is deliberately left stale (lazy
  // repair: the journals replay from the same baseline next refresh).
  std::size_t views_skipped_irrelevant = 0;
  // Relevance previews that ran (certificate valid, pure weight delta).
  std::size_t relevance_checks = 0;
  // Previews whose delta touched the certificate or exceeded the slack
  // and therefore fell through to the delta re-cost path.
  std::size_t relevance_fallthroughs = 0;
  // Base-edge mutations propagated into cached query graphs in place of
  // full rebuilds (the kEdgeMutated structural-delta path).
  std::size_t structural_edges_propagated = 0;
  // Shortest-path cache entries retained/dropped by selective
  // invalidation across delta re-costs.
  std::size_t sp_cache_entries_retained = 0;
  std::size_t sp_cache_entries_dropped = 0;

  // --- structural gate (streaming source onboarding) ---------------------
  // Structural-certificate evaluations that ran (eligible slot: clean,
  // refreshed, certificate valid with structural half populated).
  std::size_t structural_gate_checks = 0;
  // Evaluations that fell through to the serial rebuild path (journal
  // truncated or polluted by old-entity mutations, fingerprint moved,
  // attachment contact with the certificate neighborhood, or an
  // attachment inside the reachable threshold).
  std::size_t structural_gate_fallthroughs = 0;
  // Views a registration provably could not affect (the structural
  // kSkippedIrrelevant class): like views_skipped_irrelevant the slot is
  // deliberately left stale, replaying the journals from the same
  // baseline until a delta defeats the certificate.
  std::size_t views_skipped_structural = 0;
};

// Read-only classification of one view against the current base state,
// computed by RefreshEngine::ClassifyViewForAsync on the feedback thread
// so the async scheduler can acknowledge a feedback update before any
// repair work runs (docs/query_engine.md, "Async refresh contract").
enum class AsyncViewClass {
  // Slot revisions match the base state and the view is refreshed:
  // nothing to do, the published output is current.
  kUpToDate,
  // The delta provably cannot change the view's output — either it
  // repriced no edge of the snapshot (the slot is then committed), or the
  // relevance certificate proved it irrelevant (the slot is deliberately
  // left stale, the lazy-repair rule). Either way the published output is
  // valid for the new epoch without a search.
  kValidatedWithoutSearch,
  // A structural delta (new base nodes/edges from source onboarding) was
  // proven irrelevant by the view's structural certificate: every
  // attachment point is provably outside the view's reachable
  // alpha-neighborhood, so a rebuilt-and-researched view would publish
  // bit-identical output. The published output stays valid; the slot is
  // deliberately NOT committed (lazy repair — the journals replay from
  // the same baseline until a delta defeats the certificate).
  kSkippedIrrelevant,
  // A weight-only reconcile is needed and is safe to run as a background
  // repair task (RepairViewAsync): re-cost in place + re-search, no
  // query-graph rebuild, no shared-feature-space mutation.
  kRepair,
  // The view needs the serial path (first-touch build, weight-dependent
  // topology, or a structural/graph delta): repairing it re-expands the
  // query graph, which mutates the shared feature space and the view's
  // cached query graph — unsafe concurrent with other views' searches.
  // The scheduler must quiesce and route it through RefreshView.
  kSerialOnly,
};

// Batched view-refresh substrate (the feedback loop's hot path): owns one
// versioned CSR snapshot per registered view — i.e. per (query-graph
// topology, weight vector) pair — and serves every view's top-k search
// from it.
//
// Change detection is pull-based: SearchGraph and WeightVector carry
// monotone revision counters bumped at every mutation site (feedback's
// MIRA updates bump the weight revision; new-source registration and
// similarity-edge installation bump the graph revision), each paired with
// a bounded delta journal recording *what* moved (FeatureDelta /
// GraphDelta). RefreshAll() compares the revisions each snapshot was
// built against, bumps the engine generation when either moved, and per
// generation classifies every view by reading the journals:
//
//   * rebuild       — topology may have changed (node/edge additions,
//                     node mutations, a truncated structural journal, or
//                     weight-dependent topology): phase 1 re-expands the
//                     view's query graph and re-extracts its CSR;
//   * full re-cost  — unchanged topology but the weight journal was
//                     truncated or the delta was dense: the snapshot is
//                     re-costed wholesale in place (CsrGraph::Recost) and
//                     the shortest-path cache moves to a new generation;
//   * delta re-cost — the weight delta (plus any in-place base-edge
//                     mutations, propagated into the cached query graph
//                     by TopKView::PropagateBaseEdges) maps through the
//                     snapshot's feature->edge postings to a sparse edge
//                     set: only those edges are repriced
//                     (CsrGraph::RecostDelta) and the shortest-path cache
//                     is invalidated selectively, keeping every tree no
//                     repriced edge can change;
//   * skip          — nothing moved, or the delta provably repriced no
//                     edge of this view's snapshot: no re-cost, no
//                     search, results provably identical;
//   * skip (irrelevant) — the delta does reprice edges of the snapshot,
//                     but the view's relevance certificate (see
//                     steiner::RelevanceCertificate and
//                     ClassifyDeltaRelevance) proves none of them can
//                     change its top-k output: no edge inside the
//                     certificate neighborhood moved and any net decrease
//                     stays strictly inside the slack. The snapshot is
//                     deliberately left stale — the slot's revisions are
//                     NOT committed, so the journals replay the
//                     accumulated delta from the same baseline on every
//                     later refresh until one finally touches the
//                     certificate (or the journal truncates) and the view
//                     falls through to the re-cost paths (lazy repair).
//
// All classifications produce bit-identical output to N independent
// TopKView::Refresh calls; they only change how much work reproducing it
// costs — proportional to the size of the change, not of the system.
//
// A view whose QueryGraphOptions::association_cost_threshold is finite
// has weight-dependent topology (association edges are pruned by current
// cost), so weight updates degrade to full rebuilds for that view.
//
// Phase 1 runs serially across views (query-graph building interns
// features into the shared FeatureSpace); phase 2 fans the per-view
// searches out across the thread pool when one is provided. Both fan-out
// and snapshot reuse are invisible in the output: batched results are
// bit-identical to N independent TopKView::Refresh calls (the batched
// determinism contract, docs/query_engine.md, enforced by
// tests/refresh_engine_test.cc).
class RefreshEngine {
 public:
  // `pool` (optional) parallelizes phase 2 across views; it never changes
  // results. The engine does not own the pool.
  explicit RefreshEngine(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  // Enables/disables the relevance gate (on by default). Gating never
  // changes results — a skipped view's output is provably identical to a
  // refreshed one — only how much work reproducing them costs; the switch
  // exists for A/B benchmarking (bench_view_refresh) and as an escape
  // hatch.
  void set_relevance_gating(bool enabled) { relevance_gating_ = enabled; }
  bool relevance_gating() const { return relevance_gating_; }

  // Registers a view and reserves its snapshot slot; the snapshot itself
  // is built lazily on the first refresh. The view must outlive the
  // engine (or be unregistered). Returns the slot id.
  std::size_t RegisterView(query::TopKView* view);

  // Drops the most recently registered view's slot (used to roll back a
  // registration whose initial refresh failed).
  void UnregisterLastView();

  std::size_t num_views() const { return slots_.size(); }

  // Refreshes every registered view against the current base state,
  // rebuilding/re-costing each snapshot at most once per generation.
  util::Status RefreshAll(const graph::SearchGraph& base,
                          const relational::Catalog& catalog,
                          const text::TextIndex& index,
                          graph::CostModel* model,
                          const graph::WeightVector& weights);

  // Refreshes one registered view (slot id from RegisterView).
  util::Status RefreshView(std::size_t slot, const graph::SearchGraph& base,
                           const relational::Catalog& catalog,
                           const text::TextIndex& index,
                           graph::CostModel* model,
                           const graph::WeightVector& weights);

  // Runs one keyword search against `slot`'s current serving snapshot and
  // returns the (unpublished) result — the concurrent read path behind
  // QSystem::QueryView. Under serve_mu_ it captures an atomic pair
  // {engine pin, serving weight copy}: the pin freezes the CSR costs for
  // the whole enumeration (mutators copy-on-write) and the weight copy is
  // the frozen vector those costs were last reconciled against, so the
  // search can never mix a new CSR with old weights or vice versa. Any
  // number of SearchView calls may run concurrently with each other and
  // with the in-place repair paths (RepairViewAsync / weight-delta
  // refreshes); the rebuild/structural paths replace slot engines and
  // query graphs and must be excluded by the caller's serving gate
  // (QSystem holds its serve lock exclusively around them).
  // Fails until the slot's first successful refresh has built a snapshot.
  util::Result<query::ViewSnapshot> SearchView(
      std::size_t slot, const relational::Catalog& catalog) const;

  // Snapshot generation: bumped whenever a refresh observes that the
  // graph or weight revision moved. Fresh engines start at 0.
  std::uint64_t generation() const { return generation_; }

  // Counter snapshot (by value: repairs mutate the counters from pool
  // threads, so a reference would race with them).
  RefreshEngineStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  // --- async task decomposition (core::AsyncRefreshScheduler) -------------
  // The scheduler splits RefreshAll's per-view work into a serial
  // classification step (feedback thread, cheap, read-mostly) and
  // per-view repair tasks (pool threads). Calling contract: the caller
  // serializes classification calls, guarantees per-slot exclusivity
  // between a slot's classification and its repair (no repair in flight
  // when classifying it), and keeps the base state immutable while any
  // repair runs. Distinct slots' repairs may run concurrently.

  // Observes the base revisions at the start of one async round (the
  // same generation bookkeeping RefreshAll does internally).
  void BeginAsyncRound(const graph::SearchGraph& base,
                       const graph::WeightVector& weights) {
    ObserveRevisions(base, weights);
  }

  // Classifies `slot` against the base state without running any search.
  // kValidatedWithoutSearch may commit the slot (the delta-proven no-op
  // case); no other class mutates it beyond engine scratch. `index` is
  // the live text index, read (never mutated) to recompute the
  // keyword-match fingerprint when a structural delta is pending.
  AsyncViewClass ClassifyViewForAsync(std::size_t slot,
                                      const graph::SearchGraph& base,
                                      const text::TextIndex& index,
                                      const graph::WeightVector& weights);

  // The synchronous half of one structural (onboarding) repair: rebuilds
  // `slot`'s query graph + CSR snapshot against the current base state
  // (PrepareSlot with rebuilds allowed) WITHOUT running the search, and
  // returns whether a search is still needed. Mutates the shared feature
  // space and replaces the slot engine, so the caller must hold its
  // exclusive serving gate (no SearchView in flight). On `true` the slot
  // is left dirty with its prepared revision recorded, so a subsequent
  // RepairViewAsync — the asynchronous half, running on the keyed task
  // queue — finishes it in place (reconcile + search + commit) without
  // needing the serial path.
  util::Result<bool> PrepareStructuralRepair(std::size_t slot,
                                             const graph::SearchGraph& base,
                                             const text::TextIndex& index,
                                             graph::CostModel* model,
                                             const graph::WeightVector& weights);

  // Brings one view up to date in place — delta or full re-cost of its
  // snapshot plus RunSearch — against `weights`, which is typically the
  // scheduler's frozen copy of the weight vector at the repair's target
  // epoch (value- and journal-identical to the live vector at that
  // revision, immutable afterwards, so repairs never race live MIRA
  // updates). Never rebuilds the query graph and never touches the
  // shared cost model or text index; callers must have classified the
  // slot kRepair (a slot needing the serial path returns an Internal
  // error and stays repairable via RefreshView).
  util::Status RepairViewAsync(std::size_t slot,
                               const graph::SearchGraph& base,
                               const relational::Catalog& catalog,
                               const graph::WeightVector& weights);

 private:
  struct Slot {
    query::TopKView* view = nullptr;
    std::unique_ptr<steiner::FastSteinerEngine> engine;
    // Base-state revisions the snapshot was last reconciled against.
    std::uint64_t graph_revision = 0;
    std::uint64_t weight_revision = 0;
    bool built = false;
    // Snapshot state (CSR costs / cached query graph) was mutated by a
    // PrepareSlot whose search has not yet succeeded (CommitSlot clears
    // this). While set, the delta-proven no-op skip is forbidden: a
    // retry's journal replay finds the already-patched costs and would
    // otherwise commit the view's stale pre-failure results as up to
    // date. The retry must re-run the search instead.
    bool dirty = false;
    // Base revision the cached query graph (and engine topology) was
    // last brought to, even when the rebuild's search has not committed
    // yet (CommitSlot records graph_revision only after a successful
    // search). Only meaningful while `dirty`: a dirty slot whose
    // prepared revision equals the current base revision needs no
    // rebuild/propagation — just reconciliation + search — which lets
    // the async repair path finish a prepared structural rebuild.
    std::uint64_t prepared_graph_revision = 0;
    // Serial of the view certificate produced by the last search this
    // engine committed. The relevance gate requires the view's current
    // certificate to carry this serial: an out-of-band TopKView::Refresh
    // re-stamps the certificate against weights this slot's snapshot was
    // never reconciled with, so its gap is meaningless relative to the
    // snapshot's baseline costs.
    std::uint64_t certificate_serial = 0;
    // Frozen copy of the weight vector the snapshot's CSR costs were last
    // reconciled against, read by SearchView under serve_mu_ together
    // with the engine pin. Deliberately NOT advanced by gate-skipped
    // (stale-by-design) refreshes: the CSR keeps its baseline costs, so
    // serving searches must keep pricing compile/union reads with the
    // matching baseline weights — that is what keeps a concurrent
    // SearchView bit-identical to the view's published snapshot.
    std::shared_ptr<const graph::WeightVector> serving_weights;
  };

  struct PrepareOutcome {
    // The snapshot changed (or may have): the view's search must rerun.
    bool run_search = false;
    // The slot was reconciled in place and proven output-identical (the
    // delta repriced nothing): commit the observed revisions without a
    // search so the work is not redone next refresh.
    bool commit_without_search = false;
  };

  // Outcome of one relevance-gate preview (eligibility is checked by the
  // call sites; the helper only runs for eligible slots).
  enum class GateOutcome {
    kNothingRepriced,  // preview proved the delta reprices nothing here
    kSkip,             // certificate proves the output cannot change
    kFallthrough,      // touched the certificate / slack spent / dense
  };

  // Runs the relevance gate for a clean slot against a coalesced pure
  // weight delta, updating `stats` counters. Shared by PrepareSlot and
  // ClassifyViewForAsync so the two paths can never diverge on what the
  // gate admits.
  GateOutcome RunRelevanceGate(Slot* slot,
                               const graph::WeightVector& weights,
                               const std::vector<graph::FeatureDelta>& deltas,
                               RefreshEngineStats* stats);

  // Structural gate: classifies a pending structural delta against
  // `slot`'s structural certificate (ClassifyViewForAsync's graph-moved
  // branch). Decodes the graph journal window — admissible records are
  // node/edge additions plus mutations of entities added in the same
  // window (AddAssociations re-features freshly added association
  // edges); any mutation of a pre-existing entity, or a truncated
  // journal, defeats the certificate — recomputes the keyword-match
  // fingerprint against `index`, previews any concurrent weight delta
  // through the weight gate for its net decrease, then applies
  // ClassifyStructuralRelevance to the attachment set (with a contact
  // check: an attachment whose old incident edges intersect the
  // certificate neighborhood falls through, since a new edge there can
  // change the ranked union's column folding without moving any cost).
  // Returns kSkippedIrrelevant or kSerialOnly.
  AsyncViewClass ClassifyStructural(Slot* slot,
                                    const graph::SearchGraph& base,
                                    const text::TextIndex& index,
                                    const graph::WeightVector& weights,
                                    RefreshEngineStats* stats);

  // Brings `slot`'s query graph + CSR snapshot up to date with (base,
  // weights), classifying the change as rebuild / full re-cost / delta
  // re-cost / skip from the delta journals (see class comment).
  // Serial-only unless `allow_rebuild` is false (may mutate the model's
  // feature space); with `allow_rebuild` false — the async repair path —
  // any classification that needs the rebuild/structural machinery
  // returns an Internal error instead (and `index`/`model` may be
  // null). `run_gate` lets that path skip the relevance gate when the
  // caller's classification already ran it for this delta (avoiding a
  // duplicate preview and double-counted gate stats). Stat deltas land
  // in `stats` (merged by the caller under stats_mu_, so concurrent
  // repairs don't race). Does NOT commit the
  // observed revisions unless the outcome says so — CommitSlot does, and
  // only after the view's search succeeded, so a failed refresh can
  // never be mistaken for an up-to-date one on the next pass (the
  // snapshot work itself is idempotent and simply redone).
  util::Result<PrepareOutcome> PrepareSlot(Slot* slot,
                                           const graph::SearchGraph& base,
                                           const text::TextIndex* index,
                                           graph::CostModel* model,
                                           const graph::WeightVector& weights,
                                           bool allow_rebuild, bool run_gate,
                                           RefreshEngineStats* stats);

  // Adds `delta`'s counters into stats_ under stats_mu_.
  void MergeStats(const RefreshEngineStats& delta);

  // `searched` marks a commit that followed a successful RunSearch: the
  // view's certificate now describes this slot's snapshot, so its serial
  // is recorded for the relevance gate. Commits without a search leave
  // the recorded serial in place (the snapshot provably did not move, so
  // the previously recorded certificate still matches it).
  void CommitSlot(Slot* slot, const graph::SearchGraph& base,
                  const graph::WeightVector& weights, bool searched);

  // Observes the base revisions, bumping generation() when either moved
  // since the last refresh.
  void ObserveRevisions(const graph::SearchGraph& base,
                        const graph::WeightVector& weights);

  // A frozen copy of `weights` for the serving path, memoized by revision
  // so one refresh round copies the vector at most once no matter how
  // many slots it reconciles. Caller must hold serve_mu_.
  std::shared_ptr<const graph::WeightVector> SnapshotWeightsLocked(
      const graph::WeightVector& weights);

  util::ThreadPool* pool_ = nullptr;
  bool relevance_gating_ = true;
  std::uint64_t generation_ = 0;
  bool observed_any_ = false;
  std::uint64_t last_graph_revision_ = 0;
  std::uint64_t last_weight_revision_ = 0;
  std::vector<Slot> slots_;
  mutable std::mutex stats_mu_;
  RefreshEngineStats stats_;  // guarded by stats_mu_
  // Serving lock: SearchView captures {pin, serving_weights} under it and
  // the repair paths publish {recosted CSR, new serving_weights} under
  // it, so the pair is atomic — a reader can never pin a repriced CSR and
  // then read the pre-repair weights (or vice versa). One engine-level
  // mutex rather than per-slot (slots_ reallocates on RegisterView, and
  // the critical sections are a few pointer copies).
  mutable std::mutex serve_mu_;
  std::shared_ptr<const graph::WeightVector> serving_cache_;
  std::uint64_t serving_cache_revision_ = 0;
};

}  // namespace q::core

#endif  // Q_CORE_REFRESH_ENGINE_H_
