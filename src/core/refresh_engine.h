#ifndef Q_CORE_REFRESH_ENGINE_H_
#define Q_CORE_REFRESH_ENGINE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "query/view.h"
#include "relational/catalog.h"
#include "steiner/fast_solver.h"
#include "text/text_index.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace q::core {

// Aggregate counters for observability and the perf benches; cumulative
// over the engine's lifetime.
struct RefreshEngineStats {
  // Full snapshot builds: query-graph re-expansion + CSR extraction.
  std::size_t snapshots_built = 0;
  // Weight-only refreshes: CSR re-costed in place, topology kept.
  std::size_t snapshots_recosted = 0;
  // Refreshes skipped outright because neither the graph nor the weights
  // changed since the view's last refresh (results provably identical).
  std::size_t refreshes_skipped = 0;
  // Per-view top-k searches actually executed.
  std::size_t searches_run = 0;
};

// Batched view-refresh substrate (the feedback loop's hot path): owns one
// versioned CSR snapshot per registered view — i.e. per (query-graph
// topology, weight vector) pair — and serves every view's top-k search
// from it.
//
// Change detection is pull-based: SearchGraph and WeightVector carry
// monotone revision counters bumped at every mutation site (feedback's
// MIRA updates bump the weight revision; new-source registration and
// similarity-edge installation bump the graph revision). RefreshAll()
// compares the revisions each snapshot was built against and bumps the
// engine generation when either moved, so per generation each snapshot is
// reconciled at most once:
//
//   * graph revision moved      -> phase 1 rebuilds the view's query graph
//                                  and re-extracts its CSR snapshot;
//   * only weight revision moved, and the view's query-graph topology is
//     weight-independent         -> the snapshot is re-costed in place
//                                  (no graph copy, no text-index matching,
//                                  no topology extraction) and its
//                                  shortest-path cache moves to the next
//                                  generation;
//   * nothing moved             -> the refresh is skipped entirely
//                                  (independent refreshes would recompute
//                                  byte-identical state).
//
// A view whose QueryGraphOptions::association_cost_threshold is finite
// has weight-dependent topology (association edges are pruned by current
// cost), so weight updates degrade to full rebuilds for that view.
//
// Phase 1 runs serially across views (query-graph building interns
// features into the shared FeatureSpace); phase 2 fans the per-view
// searches out across the thread pool when one is provided. Both fan-out
// and snapshot reuse are invisible in the output: batched results are
// bit-identical to N independent TopKView::Refresh calls (the batched
// determinism contract, docs/query_engine.md, enforced by
// tests/refresh_engine_test.cc).
class RefreshEngine {
 public:
  // `pool` (optional) parallelizes phase 2 across views; it never changes
  // results. The engine does not own the pool.
  explicit RefreshEngine(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  // Registers a view and reserves its snapshot slot; the snapshot itself
  // is built lazily on the first refresh. The view must outlive the
  // engine (or be unregistered). Returns the slot id.
  std::size_t RegisterView(query::TopKView* view);

  // Drops the most recently registered view's slot (used to roll back a
  // registration whose initial refresh failed).
  void UnregisterLastView();

  std::size_t num_views() const { return slots_.size(); }

  // Refreshes every registered view against the current base state,
  // rebuilding/re-costing each snapshot at most once per generation.
  util::Status RefreshAll(const graph::SearchGraph& base,
                          const relational::Catalog& catalog,
                          const text::TextIndex& index,
                          graph::CostModel* model,
                          const graph::WeightVector& weights);

  // Refreshes one registered view (slot id from RegisterView).
  util::Status RefreshView(std::size_t slot, const graph::SearchGraph& base,
                           const relational::Catalog& catalog,
                           const text::TextIndex& index,
                           graph::CostModel* model,
                           const graph::WeightVector& weights);

  // Snapshot generation: bumped whenever a refresh observes that the
  // graph or weight revision moved. Fresh engines start at 0.
  std::uint64_t generation() const { return generation_; }

  const RefreshEngineStats& stats() const { return stats_; }

 private:
  struct Slot {
    query::TopKView* view = nullptr;
    std::unique_ptr<steiner::FastSteinerEngine> engine;
    // Base-state revisions the snapshot was last reconciled against.
    std::uint64_t graph_revision = 0;
    std::uint64_t weight_revision = 0;
    bool built = false;
  };

  // Brings `slot`'s query graph + CSR snapshot up to date with (base,
  // weights). Returns whether the snapshot changed (i.e. the view's
  // search must rerun); serial-only (may mutate the model's feature
  // space). Does NOT commit the observed revisions — CommitSlot does,
  // and only after the view's search succeeded, so a failed refresh can
  // never be mistaken for an up-to-date one on the next pass (the
  // snapshot work itself is idempotent and simply redone).
  util::Result<bool> PrepareSlot(Slot* slot, const graph::SearchGraph& base,
                                 const text::TextIndex& index,
                                 graph::CostModel* model,
                                 const graph::WeightVector& weights);

  void CommitSlot(Slot* slot, const graph::SearchGraph& base,
                  const graph::WeightVector& weights);

  // Observes the base revisions, bumping generation() when either moved
  // since the last refresh.
  void ObserveRevisions(const graph::SearchGraph& base,
                        const graph::WeightVector& weights);

  util::ThreadPool* pool_ = nullptr;
  std::uint64_t generation_ = 0;
  bool observed_any_ = false;
  std::uint64_t last_graph_revision_ = 0;
  std::uint64_t last_weight_revision_ = 0;
  std::vector<Slot> slots_;
  RefreshEngineStats stats_;
};

}  // namespace q::core

#endif  // Q_CORE_REFRESH_ENGINE_H_
