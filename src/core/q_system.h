#ifndef Q_CORE_Q_SYSTEM_H_
#define Q_CORE_Q_SYSTEM_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/view_context.h"
#include "core/async_refresh.h"
#include "core/refresh_engine.h"
#include "feedback/feedback_log.h"
#include "feedback/simulated_user.h"
#include "graph/cost_model.h"
#include "graph/graph_builder.h"
#include "graph/search_graph.h"
#include "learn/mira.h"
#include "match/mad_matcher.h"
#include "match/matcher.h"
#include "match/metadata_matcher.h"
#include "match/value_overlap.h"
#include "persist/snapshot.h"
#include "query/view.h"
#include "relational/catalog.h"
#include "text/text_index.h"
#include "util/env.h"
#include "util/result.h"
#include "util/shared_mutex.h"
#include "util/thread_pool.h"

namespace q::core {

enum class AlignStrategy { kExhaustive, kViewBased, kPreferential };

struct QSystemConfig {
  graph::CostModelConfig cost;
  query::ViewConfig view;
  learn::MiraConfig mira;
  match::MetadataMatcherConfig metadata;
  match::MadMatcherConfig mad;
  // Candidate alignments requested per attribute (the paper's Y).
  int top_y = 2;
  // Which matchers participate in alignment.
  bool use_metadata_matcher = true;
  bool use_mad_matcher = true;
  // Alignment-search strategy for new-source registration.
  AlignStrategy strategy = AlignStrategy::kViewBased;
  // PreferentialAligner budget (existing relations tried, 0 = all).
  std::size_t preferential_budget = 6;
  // When no view exists yet, fall back to exhaustive alignment on
  // registration (otherwise the source is added without associations).
  bool align_without_views = true;
  // Keep a value-overlap content index and use it as a pair filter.
  bool use_value_overlap_filter = false;
  std::size_t value_overlap_min = 1;
  // Worker threads for the query fast path (parallel Lawler expansion in
  // every view's top-k search): 0 = match the hardware, negative =
  // sequential. The pool never changes results, only latency (see
  // docs/query_engine.md).
  int steiner_threads = 0;
  // Sharded terminal-local search for every view's top-k (see
  // steiner::ShardedSearchConfig and docs/architecture.md, "Memory layout
  // and sharding"): each Lawler subproblem touches only the shards within
  // a proven radius of the view's keyword nodes, with verified escalation
  // keeping the output bit-identical to the unsharded solve. Never
  // changes results, only per-query memory traffic; worthwhile from
  // ~10^5 graph nodes up.
  bool sharded_search = false;
  // Relevance-scoped view refresh (alpha-neighborhood gating): let the
  // RefreshEngine skip views whose relevance certificate proves a weight
  // delta cannot change their output. Never changes results (see
  // docs/query_engine.md, "Relevance-scoped refresh"), only refresh
  // cost; off is the PR 3 delta-recost behavior.
  bool relevance_gating = true;
  // Async view refresh behind the feedback loop (docs/query_engine.md,
  // "Async refresh contract"): ApplyFeedback* returns once the weight
  // journals are appended and the relevance gate has classified views;
  // affected views are repaired in the background while reads keep
  // serving the last committed, epoch-tagged results (ReadView /
  // WaitViewFresh / DrainRefreshes below). At quiescence, results are
  // bit-identical to the synchronous mode. Off (default) keeps the
  // fully synchronous behavior: feedback returns only after every view
  // is repaired.
  bool async_refresh = false;
  // Worker threads for async repair tasks: 0 shares the steiner pool
  // (with a 1-thread fallback when that pool does not exist), > 0 gives
  // the scheduler a dedicated pool of that size.
  int async_repair_threads = 0;
};

// The Q system facade (Fig. 1): owns the catalog, text index, search
// graph, feature space/weights, matchers, aligners, learner, and views.
//
// Typical lifecycle:
//   QSystem q;
//   q.RegisterSource(src1); q.RegisterSource(src2);   // initial sources
//   q.RunInitialAlignment();                          // matcher bootstrap
//   auto view = q.CreateView({"plasma membrane", "pub title"});
//   q.RegisterAndAlignSource(new_src);                // maintenance mode
//   q.ApplyFeedback(*view, endorsed_tree);            // learning
class QSystem {
 public:
  explicit QSystem(QSystemConfig config = QSystemConfig());

  // --- sources ------------------------------------------------------------
  // Adds a source to the catalog, index, and search graph without running
  // any alignment (startup-time registration, Sec. 2.1).
  util::Status RegisterSource(std::shared_ptr<relational::DataSource> source);

  // Maintenance-mode registration (Sec. 3): adds the source, searches for
  // associations against live views using the configured strategy and
  // matchers, installs surviving alignments as association edges, and
  // refreshes all views. Returns aligner stats.
  util::Result<align::AlignerStats> RegisterAndAlignSource(
      std::shared_ptr<relational::DataSource> source);

  // Runs the enabled matchers globally over the current catalog and
  // installs top-Y alignments (the Sec. 5.2 bootstrap).
  util::Status RunInitialAlignment();

  // Installs externally computed candidates as association edges.
  util::Status AddAssociations(
      const std::vector<match::AlignmentCandidate>& candidates);

  // --- views ----------------------------------------------------------------
  // Creates and refreshes a persistent top-k view for a keyword query.
  util::Result<std::size_t> CreateView(std::vector<std::string> keywords);

  query::TopKView& view(std::size_t id) { return *views_[id]; }
  const query::TopKView& view(std::size_t id) const { return *views_[id]; }
  std::size_t num_views() const { return views_.size(); }

  // Refreshes every view through the batched RefreshEngine: one CSR
  // snapshot reconciliation per view per generation (weight-only updates
  // re-cost in place), searches fanned out across the steiner pool.
  // Output is bit-identical to refreshing each view independently. In
  // async mode this is the sync barrier: it quiesces in-flight repairs
  // first and validates every view at a fresh epoch (retrying any view
  // whose background repair failed).
  util::Status RefreshAllViews();

  // Epoch-tagged, never-blocking read of a view's last committed output
  // (the async serving path; also valid in sync mode, where results are
  // never stale). The returned snapshot stays alive and internally
  // consistent for as long as the caller holds it, even across
  // concurrent repairs.
  query::ViewResult ReadView(std::size_t id) const;

  // Runs a fresh keyword search for view `id` against its current serving
  // snapshot and returns the result — the concurrent query front end. Any
  // number of QueryView calls may run in parallel with each other AND
  // with feedback (ApplyFeedback* / async repairs): each search captures
  // an atomic {pinned CSR, frozen weight copy} pair from the view's
  // refresh slot (RefreshEngine::SearchView), so it never reads the live
  // weight vector and never observes a half-repriced snapshot. Structural
  // operations (RegisterSource*, AddAssociations via its callers,
  // CreateView, RefreshAllViews) take the serving gate exclusively and
  // briefly block queries while they rebuild.
  //
  // The returned snapshot's trees/queries/results are bit-identical to
  // the view's published output at quiescence (its serials are 0 — the
  // result is this caller's, not a published state). Under concurrent
  // feedback the result is always *some* consistent point in the repair
  // timeline: baseline-before or repaired-after, never a mix.
  util::Result<query::ViewSnapshot> QueryView(std::size_t id) const;

  // Async mode: blocks until view `id` reflects every feedback update
  // committed before this call, or `timeout` elapses (returns false).
  // Sync mode: views are always fresh; returns true.
  bool WaitViewFresh(std::size_t id, std::chrono::milliseconds timeout);

  // Async mode: waits for all queued repairs and returns the first
  // repair failure since the last successful sync barrier (stale views
  // behind a failure are retried by RefreshAllViews). Sync mode: no-op.
  util::Status DrainRefreshes();

  // The batched-refresh substrate (snapshot generations + stats).
  const RefreshEngine& refresh_engine() const { return refresh_; }

  // The async scheduler (null until the first CreateView in async mode).
  const AsyncRefreshScheduler* async_scheduler() const {
    return scheduler_.get();
  }

  // --- feedback -------------------------------------------------------------
  // The user endorsed the answer produced by `endorsed` in view
  // `view_id`: runs one MIRA update and refreshes views (Sec. 4 — "a
  // query that produces correct results is constrained to have a cost at
  // least as low as the top-ranked query result").
  util::Status ApplyFeedback(std::size_t view_id,
                             const steiner::SteinerTree& endorsed);

  // The user marked result row `row_index` of the view invalid: its
  // originating query must cost more than the best other query (Sec. 4
  // generalizes tuple feedback to the query tree via provenance).
  util::Status ApplyInvalidFeedback(std::size_t view_id,
                                    std::size_t row_index);

  // Ranking constraint: row `better_row` should be scored higher than
  // `worse_row` ("tuple t_x should be scored higher than t_y").
  util::Status ApplyRankingFeedback(std::size_t view_id,
                                    std::size_t better_row,
                                    std::size_t worse_row);

  // Simulated-expert convenience: endorse the cheapest gold-consistent
  // tree for the view (solving for one if the top-k has none). Returns
  // false if no gold-consistent tree exists at all.
  util::Result<bool> ApplyGoldFeedback(std::size_t view_id,
                                       const feedback::SimulatedUser& user);

  // --- persistence ----------------------------------------------------------
  // Writes the durable core (catalog + schemas, search graph with its
  // association edges and journal, weight vector + journal, feedback
  // log) into `dir` as one checksummed snapshot file, atomically (see
  // docs/persistence.md). Quiesces the async scheduler first so the
  // snapshot captures a consistent revision. Views are NOT persisted:
  // they are derived state, recreated lazily after a warm restart.
  // `env` defaults to the real filesystem.
  util::Status SaveSnapshot(const std::string& dir,
                            util::Env* env = nullptr);

  // Warm restart: constructs a QSystem from the snapshot in `dir`,
  // skipping RunInitialAlignment/MAD entirely — associations and learned
  // weights come from the snapshot; the text index is rebuilt from the
  // restored catalog (it is derived state). Views are not restored:
  // recreate them lazily with CreateView, which routes through the
  // RefreshEngine's classify-then-repair pipeline.
  //
  // Damage degrades per-section instead of failing (the recovery ladder
  // of docs/persistence.md): a corrupt weights section falls back to
  // replaying the persisted feedback log; a corrupt graph section keeps
  // the catalog and rebuilds the structural graph (associations lost); a
  // corrupt catalog — or an unusable header — degrades to a clean cold
  // start. Every degradation is reported in `report` (optional), never a
  // crash. Returns non-OK only when no QSystem can be produced at all
  // (e.g. no snapshot file: NotFound).
  static util::Result<std::unique_ptr<QSystem>> OpenFromSnapshot(
      const std::string& dir, QSystemConfig config = QSystemConfig(),
      util::Env* env = nullptr, persist::SnapshotLoadReport* report = nullptr);

  // --- accessors --------------------------------------------------------------
  const relational::Catalog& catalog() const { return catalog_; }
  const graph::SearchGraph& search_graph() const { return graph_; }
  graph::SearchGraph& mutable_search_graph() { return graph_; }
  const graph::WeightVector& weights() const { return weights_; }
  graph::WeightVector& mutable_weights() { return weights_; }
  graph::CostModel& cost_model() { return model_; }
  graph::FeatureSpace& feature_space() { return space_; }
  const text::TextIndex& text_index() const { return index_; }
  const QSystemConfig& config() const { return config_; }
  match::Matcher* metadata_matcher() { return metadata_matcher_.get(); }
  match::Matcher* mad_matcher() { return mad_matcher_.get(); }
  const feedback::FeedbackLog& feedback_log() const { return log_; }

 private:
  util::Result<align::AlignerStats> AlignAgainstViews(
      const relational::DataSource& source);
  // Lazily creates the shared top-k thread pool (first view creation) per
  // QSystemConfig::steiner_threads and wires it into config_.view.
  void EnsureSteinerPool();
  // Lazily creates the async scheduler (first view creation, async mode).
  void EnsureScheduler();
  // Implementations for callers already holding feedback_mu_ (the public
  // wrappers lock; compound operations like RegisterAndAlignSource lock
  // once and compose these).
  util::Status RegisterSourceLocked(
      std::shared_ptr<relational::DataSource> source);
  util::Status AddAssociationsLocked(
      const std::vector<match::AlignmentCandidate>& candidates);
  util::Status RefreshAllViewsLocked();
  // Post-MIRA refresh: async mode acks via the scheduler, sync mode
  // refreshes in line.
  util::Status RefreshAfterFeedbackLocked();
  // Post-registration refresh: async mode acks at the classification
  // boundary (scheduler->NotifyStructuralChange — views whose structural
  // certificate proves the registration irrelevant are never touched,
  // failed-certificate views rebuild with searches queued async); sync
  // mode refreshes everything in line. Caller holds feedback_mu_ only
  // (the scheduler takes the serving gate itself around rebuilds).
  util::Status RefreshAfterStructuralLocked();
  // Adds/removes per-matcher missing-vote penalty features so every
  // association edge carries, for each enabled matcher, either its
  // confidence bin or the missing penalty (see Sec. 3.4 discussion in
  // cost_model.h).
  void ReconcileMissingMatcherFeatures();
  std::vector<match::Matcher*> EnabledMatchers();
  align::AlignContext ContextFromView(const query::TopKView& view) const;
  // Appends one feedback record carrying the coalesced weight movement
  // since `revision_before` (captured from weights_.revision() before the
  // MIRA update), so the persisted log can replay feedback
  // deterministically during degraded recovery.
  void RecordFeedbackLocked(feedback::FeedbackKind kind,
                            const std::vector<std::string>& keywords,
                            std::uint64_t revision_before);
  // OpenFromSnapshot's decode + recovery-ladder body.
  util::Status LoadFromSnapshotLocked(const persist::LoadedSnapshot& loaded,
                                      persist::SnapshotLoadReport* report);

  QSystemConfig config_;
  // Serializes every base-state mutation (feedback, registration,
  // association installation, view creation, sync barriers) against each
  // other and against the async scheduler's classification step. Reads
  // (ReadView / accessors at quiescence) never take it.
  std::mutex feedback_mu_;
  // The serving gate: QueryView / ReadView / WaitViewFresh hold it shared;
  // operations that restructure what queries read lock-free — views_
  // growth, engine-slot rebuilds, catalog/index mutation, scheduler
  // creation — hold it exclusively (RegisterSourceLocked, CreateView,
  // RefreshAllViewsLocked, and the scheduler's serial-repair branch via
  // the pointer handed to EnsureScheduler). Pure weight-delta feedback
  // deliberately does NOT take it: searches price against their captured
  // frozen weights, so MIRA updates and in-place repairs run concurrently
  // with queries. Lock order: feedback_mu_ -> serve_mu_ -> (engine locks);
  // never hold serve_mu_ while blocking on repairs (see WaitViewFresh).
  mutable util::SharedMutex serve_mu_;
  // Shared by all views' top-k searches; must outlive views_.
  std::unique_ptr<util::ThreadPool> steiner_pool_;
  graph::FeatureSpace space_;
  graph::CostModel model_;
  graph::WeightVector weights_;
  relational::Catalog catalog_;
  graph::SearchGraph graph_;
  text::TextIndex index_;
  match::ValueOverlapIndex overlap_;
  std::unique_ptr<match::MetadataMatcher> metadata_matcher_;
  std::unique_ptr<match::MadMatcher> mad_matcher_;
  std::unique_ptr<align::Aligner> aligner_;
  learn::MiraLearner learner_;
  feedback::FeedbackLog log_;
  std::vector<std::unique_ptr<query::TopKView>> views_;
  // Parallel to views_: views_[i] is registered as refresh_ slot i.
  RefreshEngine refresh_;
  // Declared last so it is destroyed first: its destructor drains every
  // in-flight repair while the engine, views, and pools are still alive.
  std::unique_ptr<AsyncRefreshScheduler> scheduler_;
};

}  // namespace q::core

#endif  // Q_CORE_Q_SYSTEM_H_
