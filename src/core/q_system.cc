#include "core/q_system.h"

#include <algorithm>

#include "util/logging.h"

namespace q::core {

QSystem::QSystem(QSystemConfig config)
    : config_(config),
      model_(&space_, config.cost),
      weights_(&space_),
      learner_(config.mira) {
  // Never adopt a pool pointer smuggled in via a copied config (it would
  // belong to another QSystem and could dangle); this system's own pool is
  // created lazily on first view creation, so instances that never answer
  // queries spawn no threads.
  config_.view.top_k.pool = nullptr;
  config_.view.top_k.sharded.enabled = config_.sharded_search;
  refresh_.set_relevance_gating(config_.relevance_gating);
  metadata_matcher_ =
      std::make_unique<match::MetadataMatcher>(config_.metadata);
  mad_matcher_ = std::make_unique<match::MadMatcher>(config_.mad);
  switch (config_.strategy) {
    case AlignStrategy::kExhaustive:
      aligner_ = std::make_unique<align::ExhaustiveAligner>();
      break;
    case AlignStrategy::kViewBased:
      aligner_ = std::make_unique<align::ViewBasedAligner>();
      break;
    case AlignStrategy::kPreferential:
      aligner_ = std::make_unique<align::PreferentialAligner>();
      break;
  }
  if (config_.use_value_overlap_filter) {
    auto filter = [this](const relational::AttributeId& a,
                         const relational::AttributeId& b) {
      return overlap_.CanJoin(a, b, config_.value_overlap_min);
    };
    metadata_matcher_->set_pair_filter(filter);
  }
}

void QSystem::EnsureSteinerPool() {
  if (steiner_pool_ != nullptr || config_.view.top_k.pool != nullptr) return;
  int threads = config_.steiner_threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<int>(hw) : -1;
  }
  if (threads > 1) {
    steiner_pool_ = std::make_unique<util::ThreadPool>(threads);
    config_.view.top_k.pool = steiner_pool_.get();
    // The same pool fans batched refreshes out across views.
    refresh_.set_pool(steiner_pool_.get());
  }
}

void QSystem::EnsureScheduler() {
  if (!config_.async_refresh || scheduler_ != nullptr) return;
  scheduler_ = std::make_unique<AsyncRefreshScheduler>(
      &refresh_, steiner_pool_.get(), config_.async_repair_threads, &graph_,
      &catalog_, &index_, &model_, &weights_, &serve_mu_);
}

std::vector<match::Matcher*> QSystem::EnabledMatchers() {
  std::vector<match::Matcher*> matchers;
  if (config_.use_metadata_matcher) matchers.push_back(metadata_matcher_.get());
  if (config_.use_mad_matcher) matchers.push_back(mad_matcher_.get());
  return matchers;
}

util::Status QSystem::RegisterSource(
    std::shared_ptr<relational::DataSource> source) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  return RegisterSourceLocked(std::move(source));
}

util::Status QSystem::RegisterSourceLocked(
    std::shared_ptr<relational::DataSource> source) {
  // Structural mutation: the catalog, index, and graph are read lock-free
  // by in-flight repairs, so quiesce them first (the feedback lock keeps
  // new ones from being scheduled meanwhile). Concurrent QueryView
  // searches read the same state lock-free; the exclusive serving gate
  // holds them off while it changes.
  if (scheduler_ != nullptr) scheduler_->Quiesce();
  std::unique_lock<util::SharedMutex> serve_lock(serve_mu_);
  Q_RETURN_NOT_OK(catalog_.AddSource(source));
  for (const auto& table : source->tables()) {
    index_.IndexTable(*table);
    if (config_.use_value_overlap_filter) overlap_.IndexTable(*table);
  }
  graph::AddSourceToGraph(*source, &model_, &graph_);
  return util::Status::OK();
}

util::Status QSystem::AddAssociations(
    const std::vector<match::AlignmentCandidate>& candidates) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  return AddAssociationsLocked(candidates);
}

util::Status QSystem::AddAssociationsLocked(
    const std::vector<match::AlignmentCandidate>& candidates) {
  if (scheduler_ != nullptr) scheduler_->Quiesce();
  for (const match::AlignmentCandidate& c : candidates) {
    auto na = graph_.FindAttributeNode(c.a);
    auto nb = graph_.FindAttributeNode(c.b);
    if (!na.has_value() || !nb.has_value()) {
      return util::Status::NotFound("alignment endpoints missing from graph: " +
                                    c.a.ToString() + " / " + c.b.ToString());
    }
    if (*na == *nb) continue;
    // AddAssociationEdge merges into an existing edge: only the new
    // matcher's confidence feature should be added then, so pass the bin
    // feature alone when the edge already exists.
    auto existing = graph_.FindAssociation(*na, *nb);
    if (existing.has_value()) {
      graph_.AddAssociationEdge(
          *na, *nb, model_.MatcherConfidenceFeature(c.matcher, c.confidence),
          graph::MatcherScore{c.matcher, c.confidence});
    } else {
      graph::FeatureVec features = model_.AssociationFeatures(
          c.matcher, c.confidence, c.a.RelationQualifiedName(),
          c.b.RelationQualifiedName(), c.PairKey());
      graph_.AddAssociationEdge(*na, *nb, std::move(features),
                                graph::MatcherScore{c.matcher, c.confidence});
    }
  }
  ReconcileMissingMatcherFeatures();
  return util::Status::OK();
}

void QSystem::ReconcileMissingMatcherFeatures() {
  // Sec. 3.4: each edge carries "a feature for the confidence value of
  // each schema matcher". An edge a matcher stayed silent about gets that
  // matcher's missing-penalty feature instead — otherwise silence would
  // read as free (maximum) confidence and single-matcher junk would
  // undercut alignments both matchers agree on.
  std::vector<std::string> matcher_names;
  if (config_.use_metadata_matcher) {
    matcher_names.emplace_back(metadata_matcher_->name());
  }
  if (config_.use_mad_matcher) {
    matcher_names.emplace_back(mad_matcher_->name());
  }
  for (graph::EdgeId e :
       graph_.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    // Probe through const access first and rewrite the features (a
    // revision- and journal-bumping mutation) only when a feature
    // actually has to move: a no-op pass must not dirty every
    // association edge, or the delta refresh path would reprice the
    // whole graph for nothing.
    for (const std::string& name : matcher_names) {
      bool voted = false;
      for (const auto& p : graph_.edge_provenance(e)) {
        if (p.matcher == name) voted = true;
      }
      graph::FeatureId missing = model_.MatcherMissingFeature(name);
      double present = graph_.edge_features(e).ValueOf(missing);
      if (voted && present != 0.0) {
        graph::FeatureVec moved = graph_.edge_features(e);
        moved.Remove(missing);
        graph_.SetEdgeFeatures(e, std::move(moved));
      } else if (!voted && present == 0.0) {
        graph::FeatureVec moved = graph_.edge_features(e);
        moved.Add(missing, 1.0);
        graph_.SetEdgeFeatures(e, std::move(moved));
      }
    }
  }
}

util::Status QSystem::RunInitialAlignment() {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  std::vector<const relational::Table*> tables;
  for (const auto& t : catalog_.AllTables()) tables.push_back(t.get());
  for (match::Matcher* matcher : EnabledMatchers()) {
    Q_ASSIGN_OR_RETURN(std::vector<match::AlignmentCandidate> candidates,
                       matcher->InduceAlignments(tables, config_.top_y));
    Q_RETURN_NOT_OK(AddAssociationsLocked(candidates));
  }
  return RefreshAllViewsLocked();
}

align::AlignContext QSystem::ContextFromView(
    const query::TopKView& view) const {
  return align::ContextFromView(view, graph_, space_, weights_,
                                config_.top_y, config_.preferential_budget);
}

util::Result<align::AlignerStats> QSystem::AlignAgainstViews(
    const relational::DataSource& source) {
  align::AlignerStats stats;
  std::vector<match::AlignmentCandidate> all;

  bool any_view = false;
  for (const auto& view : views_) {
    if (!view->refreshed()) continue;
    any_view = true;
    align::AlignContext ctx = ContextFromView(*view);
    for (match::Matcher* matcher : EnabledMatchers()) {
      Q_ASSIGN_OR_RETURN(
          std::vector<match::AlignmentCandidate> candidates,
          aligner_->Align(graph_, weights_, catalog_, source, ctx, matcher,
                          &stats));
      for (auto& c : candidates) all.push_back(std::move(c));
    }
  }
  if (!any_view && config_.align_without_views) {
    align::ExhaustiveAligner fallback;
    align::AlignContext ctx;
    ctx.top_y = config_.top_y;
    for (match::Matcher* matcher : EnabledMatchers()) {
      Q_ASSIGN_OR_RETURN(
          std::vector<match::AlignmentCandidate> candidates,
          fallback.Align(graph_, weights_, catalog_, source, ctx, matcher,
                         &stats));
      for (auto& c : candidates) all.push_back(std::move(c));
    }
  }
  Q_RETURN_NOT_OK(AddAssociationsLocked(
      match::TopYPerAttribute(std::move(all), config_.top_y)));
  return stats;
}

util::Result<align::AlignerStats> QSystem::RegisterAndAlignSource(
    std::shared_ptr<relational::DataSource> source) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  Q_RETURN_NOT_OK(RegisterSourceLocked(source));
  Q_ASSIGN_OR_RETURN(align::AlignerStats stats, AlignAgainstViews(*source));
  Q_RETURN_NOT_OK(RefreshAfterStructuralLocked());
  return stats;
}

util::Result<std::size_t> QSystem::CreateView(
    std::vector<std::string> keywords) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  // Registration grows the engine's slot table (invalidating concurrent
  // SearchView's slot reference), and the first refresh interns features:
  // both require the exclusive serving gate. Taking it before
  // EnsureScheduler also publishes scheduler_ to gate-holding readers.
  std::unique_lock<util::SharedMutex> serve_lock(serve_mu_);
  EnsureSteinerPool();
  EnsureScheduler();
  // Registration grows the engine's slot table and the initial refresh
  // interns features: both require quiescence in async mode. (Repair
  // tasks never take the serving gate, so draining under it is safe.)
  if (scheduler_ != nullptr) scheduler_->Quiesce();
  auto view = std::make_unique<query::TopKView>(std::move(keywords),
                                                config_.view);
  // Register-then-refresh keeps the new view's CSR snapshot warm for the
  // feedback loop; a failed initial refresh rolls the registration back.
  std::size_t slot = refresh_.RegisterView(view.get());
  util::Status status =
      refresh_.RefreshView(slot, graph_, catalog_, index_, &model_, weights_);
  if (!status.ok()) {
    refresh_.UnregisterLastView();
    return status;
  }
  if (scheduler_ != nullptr) scheduler_->TrackView(slot, view.get());
  views_.push_back(std::move(view));
  return views_.size() - 1;
}

util::Status QSystem::RefreshAllViews() {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  return RefreshAllViewsLocked();
}

util::Status QSystem::RefreshAllViewsLocked() {
  // A full refresh may rebuild query graphs and replace slot engines:
  // exclusive gate. SyncBarrier relies on this caller-held gate instead
  // of taking it itself (shared_mutex is not recursive).
  std::unique_lock<util::SharedMutex> serve_lock(serve_mu_);
  if (scheduler_ != nullptr) return scheduler_->SyncBarrier();
  return refresh_.RefreshAll(graph_, catalog_, index_, &model_, weights_);
}

util::Status QSystem::RefreshAfterFeedbackLocked() {
  if (scheduler_ != nullptr) {
    // The ack path: journals are appended, the scheduler classifies and
    // queues repairs, and feedback returns without waiting for searches.
    scheduler_->NotifyBaseChanged();
    return util::Status::OK();
  }
  return RefreshAllViewsLocked();
}

util::Status QSystem::RefreshAfterStructuralLocked() {
  if (scheduler_ != nullptr) {
    // The onboarding ack path: certificate-skipped views are never
    // touched, failed views rebuild now with searches queued async.
    // NotifyStructuralChange takes the serving gate itself around the
    // rebuilds, so this caller must hold only feedback_mu_ here.
    return scheduler_->NotifyStructuralChange();
  }
  return RefreshAllViewsLocked();
}

query::ViewResult QSystem::ReadView(std::size_t id) const {
  // Unknown ids return an empty result (state == nullptr) rather than
  // UB, mirroring the Status the mutating APIs return. The shared gate
  // orders the scheduler_ check against CreateView's publication and
  // keeps views_ stable for the sync branch; the async path additionally
  // bounds-checks under the scheduler lock (its tracked set is what a
  // concurrent CreateView grows). Read() never blocks, so holding the
  // shared gate across it is safe.
  std::shared_lock<util::SharedMutex> serve_lock(serve_mu_);
  if (scheduler_ != nullptr) return scheduler_->Read(id);
  if (id >= views_.size()) return query::ViewResult{};
  query::ViewResult result;
  result.state = views_[id]->Snapshot();
  result.generation = refresh_.generation();
  result.stale = false;
  return result;
}

util::Result<query::ViewSnapshot> QSystem::QueryView(std::size_t id) const {
  std::shared_lock<util::SharedMutex> serve_lock(serve_mu_);
  if (id >= views_.size()) {
    return util::Status::InvalidArgument("no such view");
  }
  // View id == engine slot id: CreateView registers then appends, both
  // under the exclusive gate, so the mapping cannot skew while we hold
  // the shared one.
  return refresh_.SearchView(id, catalog_);
}

bool QSystem::WaitViewFresh(std::size_t id,
                            std::chrono::milliseconds timeout) {
  AsyncRefreshScheduler* scheduler = nullptr;
  {
    // Do NOT hold the gate across the blocking wait: the serial-repair
    // branch of NotifyBaseChanged needs it exclusively to perform the
    // very repair this waiter is waiting for. The pointer copy is safe —
    // once created, the scheduler lives until ~QSystem.
    std::shared_lock<util::SharedMutex> serve_lock(serve_mu_);
    if (scheduler_ == nullptr) return id < views_.size();
    scheduler = scheduler_.get();
  }
  return scheduler->WaitFresh(id, timeout);
}

util::Status QSystem::DrainRefreshes() {
  AsyncRefreshScheduler* scheduler = nullptr;
  {
    // Same pattern as WaitViewFresh: never block on repairs while
    // holding the gate.
    std::shared_lock<util::SharedMutex> serve_lock(serve_mu_);
    if (scheduler_ == nullptr) return util::Status::OK();
    scheduler = scheduler_.get();
  }
  return scheduler->Drain();
}

util::Status QSystem::ApplyFeedback(std::size_t view_id,
                                    const steiner::SteinerTree& endorsed) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  if (view_id >= views_.size()) {
    return util::Status::InvalidArgument("no such view");
  }
  query::TopKView& v = *views_[view_id];
  const std::uint64_t rev_before = weights_.revision();
  auto info = learner_.Update(v.query_graph().graph,
                              v.query_graph().keyword_nodes, endorsed,
                              &weights_);
  Q_RETURN_NOT_OK(info.status());
  RecordFeedbackLocked(feedback::FeedbackKind::kEndorse, v.keywords(),
                       rev_before);
  return RefreshAfterFeedbackLocked();
}

util::Status QSystem::ApplyInvalidFeedback(std::size_t view_id,
                                           std::size_t row_index) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  if (view_id >= views_.size()) {
    return util::Status::InvalidArgument("no such view");
  }
  query::TopKView& v = *views_[view_id];
  // Read through one snapshot: rows index queries by position, and a
  // concurrent repair publishing mid-call must not tear that pairing.
  auto state = v.Snapshot();
  if (row_index >= state->results.rows.size()) {
    return util::Status::OutOfRange("no such result row");
  }
  // Generalize the tuple to its originating query tree via provenance.
  std::size_t bad_query = state->results.rows[row_index].query_index;
  const steiner::SteinerTree& bad_tree = state->queries[bad_query].tree;
  // Target: the cheapest tree that is not the invalid one; the MIRA
  // margin then pushes the invalid tree's cost above it.
  const steiner::SteinerTree* target = nullptr;
  for (const auto& tree : state->trees) {
    if (!(tree == bad_tree)) {
      target = &tree;
      break;
    }
  }
  if (target == nullptr) {
    return util::Status::NotFound(
        "no alternative query to prefer over the invalid result");
  }
  const std::uint64_t rev_before = weights_.revision();
  auto info = learner_.UpdateAgainst(v.query_graph().graph, {bad_tree},
                                     *target, &weights_);
  Q_RETURN_NOT_OK(info.status());
  RecordFeedbackLocked(feedback::FeedbackKind::kInvalid, v.keywords(),
                       rev_before);
  return RefreshAfterFeedbackLocked();
}

util::Status QSystem::ApplyRankingFeedback(std::size_t view_id,
                                           std::size_t better_row,
                                           std::size_t worse_row) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  if (view_id >= views_.size()) {
    return util::Status::InvalidArgument("no such view");
  }
  query::TopKView& v = *views_[view_id];
  auto state = v.Snapshot();
  const auto& rows = state->results.rows;
  if (better_row >= rows.size() || worse_row >= rows.size()) {
    return util::Status::OutOfRange("no such result row");
  }
  const steiner::SteinerTree& better =
      state->queries[rows[better_row].query_index].tree;
  const steiner::SteinerTree& worse =
      state->queries[rows[worse_row].query_index].tree;
  if (better == worse) {
    return util::Status::InvalidArgument(
        "both rows come from the same query; ranking constraint is vacuous");
  }
  const std::uint64_t rev_before = weights_.revision();
  auto info = learner_.UpdateAgainst(v.query_graph().graph, {worse}, better,
                                     &weights_);
  Q_RETURN_NOT_OK(info.status());
  RecordFeedbackLocked(feedback::FeedbackKind::kRanking, v.keywords(),
                       rev_before);
  return RefreshAfterFeedbackLocked();
}

util::Result<bool> QSystem::ApplyGoldFeedback(
    std::size_t view_id, const feedback::SimulatedUser& user) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  if (view_id >= views_.size()) {
    return util::Status::InvalidArgument("no such view");
  }
  query::TopKView& v = *views_[view_id];
  auto state = v.Snapshot();
  auto endorsed =
      user.EndorseForLearning(v.query_graph(), state->trees, weights_);
  if (!endorsed.has_value()) return false;
  // Sec. 4: the user "may notice a few results that seem either clearly
  // correct or clearly implausible". The expert marks the endorsed answer
  // valid and the non-gold answers in the visible list invalid; other
  // gold-consistent answers (e.g. roundabout joins over correct edges)
  // are also correct, so they are not used as counter-examples —
  // otherwise feedback on one query would penalize alignments another
  // query endorses.
  std::vector<steiner::SteinerTree> implausible;
  std::vector<steiner::SteinerTree> valid;
  for (const steiner::SteinerTree& t : state->trees) {
    if (user.IsGoldConsistent(v.query_graph(), t)) {
      valid.push_back(t);
    } else {
      implausible.push_back(t);
    }
  }
  // One update per valid answer the user marked ("annotating each query
  // answer"): any gold edge shared between a valid tree and an
  // implausible one cancels out of the constraint difference, so only the
  // implausible tree's distinguishing (junk) edges are pushed up.
  const std::uint64_t rev_before = weights_.revision();
  auto info = learner_.UpdateAgainst(v.query_graph().graph, implausible,
                                     *endorsed, &weights_);
  Q_RETURN_NOT_OK(info.status());
  for (const steiner::SteinerTree& t : valid) {
    if (t == *endorsed) continue;
    auto extra =
        learner_.UpdateAgainst(v.query_graph().graph, implausible, t,
                               &weights_);
    Q_RETURN_NOT_OK(extra.status());
  }
  RecordFeedbackLocked(feedback::FeedbackKind::kGold, v.keywords(),
                       rev_before);
  Q_RETURN_NOT_OK(RefreshAfterFeedbackLocked());
  return true;
}

void QSystem::RecordFeedbackLocked(feedback::FeedbackKind kind,
                                   const std::vector<std::string>& keywords,
                                   std::uint64_t revision_before) {
  feedback::FeedbackEvent event;
  event.kind = kind;
  event.keywords = keywords;
  event.weight_revision = weights_.revision();
  std::vector<graph::FeatureDelta> deltas;
  event.replayable = weights_.DeltaSince(revision_before, &deltas);
  if (event.replayable) {
    graph::CoalesceFeatureDeltas(&deltas);
    event.deltas = std::move(deltas);
  }
  log_.Record(std::move(event));
}

util::Status QSystem::SaveSnapshot(const std::string& dir, util::Env* env) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  // Async repairs read the graph and weights lock-free; a consistent
  // snapshot requires them quiet, same as any structural mutation (the
  // feedback lock keeps new repairs from being scheduled meanwhile).
  if (scheduler_ != nullptr) scheduler_->Quiesce();
  persist::SnapshotState state;
  state.catalog = &catalog_;
  state.space = &space_;
  state.graph = &graph_;
  state.weights = &weights_;
  state.log = &log_;
  return persist::SaveSnapshot(state, dir, env);
}

util::Result<std::unique_ptr<QSystem>> QSystem::OpenFromSnapshot(
    const std::string& dir, QSystemConfig config, util::Env* env,
    persist::SnapshotLoadReport* report) {
  persist::SnapshotLoadReport scratch_report;
  if (report == nullptr) report = &scratch_report;
  *report = persist::SnapshotLoadReport{};

  persist::LoadedSnapshot loaded;
  util::Status read = persist::ReadSnapshotFile(dir, env, &loaded);
  if (read.IsNotFound()) {
    // No snapshot is not a degraded snapshot: the caller decides whether
    // to cold-start (and from what data).
    return read;
  }

  auto q = std::make_unique<QSystem>(std::move(config));
  if (!read.ok()) {
    // Header unusable (bad magic/CRC/version): nothing salvageable, so
    // the system comes up clean and empty — the bottom of the ladder.
    report->header = read;
    report->cold_start = true;
    util::Status skipped =
        util::Status::Internal("skipped: snapshot header unusable");
    report->catalog = skipped;
    report->feature_space = skipped;
    report->graph = skipped;
    report->weights = skipped;
    report->feedback = skipped;
    report->notes.push_back("cold start: " + read.ToString());
    return q;
  }

  std::lock_guard<std::mutex> lock(q->feedback_mu_);
  Q_RETURN_NOT_OK(q->LoadFromSnapshotLocked(loaded, report));
  return q;
}

util::Status QSystem::LoadFromSnapshotLocked(
    const persist::LoadedSnapshot& loaded,
    persist::SnapshotLoadReport* report) {
  for (const std::string& err : loaded.outcome.section_errors) {
    report->notes.push_back(err);
  }
  auto section_status = [&loaded](persist::SectionTag tag,
                                  util::Status decoded) {
    if (loaded.Find(tag) != nullptr) return decoded;
    return util::Status::NotFound(std::string(persist::SectionTagName(
                                      static_cast<std::uint32_t>(tag))) +
                                  " section missing or failed checksum");
  };
  auto skipped = [](const char* why) {
    return util::Status::Internal(std::string("skipped: ") + why);
  };

  // --- catalog: the anchor; nothing else is meaningful without it -------
  const persist::ParsedSection* sec =
      loaded.Find(persist::SectionTag::kCatalog);
  {
    // Decode into a scratch catalog so a mid-payload failure cannot leave
    // a half-populated one behind.
    relational::Catalog decoded;
    util::Status status =
        sec ? persist::DecodeCatalog(sec->payload, &decoded)
            : section_status(persist::SectionTag::kCatalog, util::Status::OK());
    report->catalog = status;
    if (!status.ok()) {
      report->cold_start = true;
      report->feature_space = skipped("catalog unavailable");
      report->graph = skipped("catalog unavailable");
      report->weights = skipped("catalog unavailable");
      report->feedback = skipped("catalog unavailable");
      report->notes.push_back("cold start: catalog section unrecoverable (" +
                              status.ToString() + ")");
      return util::Status::OK();
    }
    catalog_ = std::move(decoded);
  }
  // The text and value-overlap indexes are derived state: rebuild them
  // from the restored catalog (registration order is preserved, so the
  // rebuilt index is identical to the saved system's).
  index_.IndexCatalog(catalog_);
  if (config_.use_value_overlap_filter) {
    for (const auto& table : catalog_.AllTables()) {
      overlap_.IndexTable(*table);
    }
  }

  // --- feedback log: independent of the sections below, and the weights
  // fallback needs it, so decode it early.
  sec = loaded.Find(persist::SectionTag::kFeedback);
  report->feedback = section_status(
      persist::SectionTag::kFeedback,
      sec ? persist::DecodeFeedback(sec->payload, &log_) : util::Status::OK());
  if (!report->feedback.ok()) {
    report->notes.push_back("feedback log lost (" +
                            report->feedback.ToString() + ")");
  }

  // --- feature space: every persisted graph feature id and weight slot
  // is an index into it; losing it invalidates both sections below.
  sec = loaded.Find(persist::SectionTag::kFeatureSpace);
  {
    util::Status status = section_status(persist::SectionTag::kFeatureSpace,
                                         util::Status::OK());
    if (sec != nullptr) {
      // Validate against a scratch space first: DecodeFeatureSpace
      // interns as it goes, and a partially-interned real space would
      // poison the cost model's feature ids.
      graph::FeatureSpace probe;
      status = persist::DecodeFeatureSpace(sec->payload, &probe);
      if (status.ok()) {
        status = persist::DecodeFeatureSpace(sec->payload, &space_);
      }
    }
    report->feature_space = status;
    if (!status.ok()) {
      report->graph = skipped("feature space unavailable");
      report->weights = skipped("feature space unavailable");
      // Structural edges (membership, declared FKs) are derivable from
      // the catalog; the learned capital is not.
      graph_ = graph::BuildSearchGraph(catalog_, &model_);
      report->notes.push_back(
          "feature space unrecoverable: structural graph rebuilt; "
          "associations and learned weights lost — re-run alignment and "
          "feedback");
      return util::Status::OK();
    }
  }

  // --- search graph (with association edges + journal) ------------------
  sec = loaded.Find(persist::SectionTag::kGraph);
  {
    graph::SearchGraph decoded;
    util::Status status =
        sec ? persist::DecodeGraph(sec->payload, space_.size(), &decoded)
            : section_status(persist::SectionTag::kGraph, util::Status::OK());
    report->graph = status;
    if (status.ok()) {
      graph_ = std::move(decoded);
    } else {
      graph_ = graph::BuildSearchGraph(catalog_, &model_);
      report->notes.push_back("graph section unrecoverable (" +
                              status.ToString() +
                              "): structural graph rebuilt; association "
                              "edges lost — re-run alignment");
    }
  }

  // --- weights (+ journal), falling back to feedback replay -------------
  sec = loaded.Find(persist::SectionTag::kWeights);
  {
    util::Status status =
        sec ? persist::DecodeWeights(sec->payload, space_.size(), &weights_)
            : section_status(persist::SectionTag::kWeights,
                             util::Status::OK());
    report->weights = status;
    if (!status.ok()) {
      report->notes.push_back("weights section unrecoverable (" +
                              status.ToString() + ")");
      if (report->feedback.ok() && !log_.empty()) {
        util::Status replay = log_.ReplayInto(&weights_);
        if (replay.ok()) {
          report->weights_replayed = true;
          report->notes.push_back(
              log_.complete_history()
                  ? "weights relearned by replaying the full feedback log"
                  : "weights partially relearned by replaying the retained "
                    "feedback window (older events were dropped by the "
                    "sliding window)");
        } else {
          report->notes.push_back("feedback replay failed (" +
                                  replay.ToString() +
                                  "); weights reset to initial");
        }
      } else {
        report->notes.push_back("weights reset to initial");
      }
    }
  }
  return util::Status::OK();
}

}  // namespace q::core
