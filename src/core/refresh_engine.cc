#include "core/refresh_engine.h"

#include <functional>
#include <utility>

namespace q::core {

std::size_t RefreshEngine::RegisterView(query::TopKView* view) {
  Slot slot;
  slot.view = view;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void RefreshEngine::UnregisterLastView() {
  if (!slots_.empty()) slots_.pop_back();
}

void RefreshEngine::ObserveRevisions(const graph::SearchGraph& base,
                                     const graph::WeightVector& weights) {
  if (!observed_any_ || last_graph_revision_ != base.revision() ||
      last_weight_revision_ != weights.revision()) {
    if (observed_any_) ++generation_;
    observed_any_ = true;
    last_graph_revision_ = base.revision();
    last_weight_revision_ = weights.revision();
  }
}

util::Result<bool> RefreshEngine::PrepareSlot(
    Slot* slot, const graph::SearchGraph& base, const text::TextIndex& index,
    graph::CostModel* model, const graph::WeightVector& weights) {
  query::TopKView& view = *slot->view;
  const bool graph_moved = !slot->built ||
                           slot->graph_revision != base.revision();
  const bool weights_moved = !slot->built ||
                             slot->weight_revision != weights.revision();
  if (!graph_moved && !weights_moved && view.refreshed()) {
    return false;
  }

  // A finite association-cost threshold makes the query-graph topology a
  // function of the weights (edges are pruned by current cost), so only
  // the infinite-threshold default is eligible for the re-cost fast path.
  const bool weight_independent_topology =
      view.config().query_graph.association_cost_threshold ==
      std::numeric_limits<double>::infinity();

  if (graph_moved || !weight_independent_topology) {
    Q_RETURN_NOT_OK(view.RebuildQueryGraph(base, index, model, weights));
    slot->engine = std::make_unique<steiner::FastSteinerEngine>(
        view.query_graph().graph, weights, view.config().top_k.use_sp_cache);
    ++stats_.snapshots_built;
  } else {
    // Weight-only update over an unchanged topology: re-cost the CSR in
    // place. The cached query graph is bit-identical to what a rebuild
    // would produce (same base revision, same index, same features), so
    // skipping the rebuild cannot change the search's input.
    slot->engine->Recost(view.query_graph().graph, weights);
    ++stats_.snapshots_recosted;
  }
  return true;
}

void RefreshEngine::CommitSlot(Slot* slot, const graph::SearchGraph& base,
                               const graph::WeightVector& weights) {
  slot->graph_revision = base.revision();
  slot->weight_revision = weights.revision();
  slot->built = true;
}

util::Status RefreshEngine::RefreshAll(const graph::SearchGraph& base,
                                       const relational::Catalog& catalog,
                                       const text::TextIndex& index,
                                       graph::CostModel* model,
                                       const graph::WeightVector& weights) {
  ObserveRevisions(base, weights);

  // Phase 1 (serial, in registration order — feature interning follows
  // the same order as N independent refreshes would): reconcile every
  // snapshot with the current base state.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Q_ASSIGN_OR_RETURN(bool changed, PrepareSlot(&slots_[i], base, index,
                                                 model, weights));
    if (changed) {
      pending.push_back(i);
    } else {
      ++stats_.refreshes_skipped;
    }
  }

  // Phase 2: fan the per-view searches out. Each task touches only its
  // own view plus read-only shared state (catalog, weights, its own
  // synchronized SP cache), and results land in per-view slots, so the
  // merge is deterministic regardless of scheduling.
  std::vector<util::Status> statuses(pending.size(), util::Status::OK());
  auto run_one = [&](std::size_t j) {
    Slot& slot = slots_[pending[j]];
    statuses[j] = slot.view->RunSearch(catalog, weights, slot.engine.get());
  };
  if (pool_ != nullptr && pending.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      tasks.push_back([&run_one, j] { run_one(j); });
    }
    pool_->RunAll(tasks);
  } else {
    for (std::size_t j = 0; j < pending.size(); ++j) run_one(j);
  }
  stats_.searches_run += pending.size();
  // Commit only the slots whose search succeeded; failed ones keep their
  // old revisions and are re-prepared (and re-searched) next refresh
  // instead of being skipped as up to date.
  for (std::size_t j = 0; j < pending.size(); ++j) {
    if (statuses[j].ok()) {
      CommitSlot(&slots_[pending[j]], base, weights);
    }
  }
  for (const util::Status& status : statuses) {
    Q_RETURN_NOT_OK(status);
  }
  return util::Status::OK();
}

util::Status RefreshEngine::RefreshView(std::size_t slot_id,
                                        const graph::SearchGraph& base,
                                        const relational::Catalog& catalog,
                                        const text::TextIndex& index,
                                        graph::CostModel* model,
                                        const graph::WeightVector& weights) {
  if (slot_id >= slots_.size()) {
    return util::Status::InvalidArgument("no such view slot");
  }
  ObserveRevisions(base, weights);
  Slot& slot = slots_[slot_id];
  Q_ASSIGN_OR_RETURN(bool changed,
                     PrepareSlot(&slot, base, index, model, weights));
  if (!changed) {
    ++stats_.refreshes_skipped;
    return util::Status::OK();
  }
  ++stats_.searches_run;
  Q_RETURN_NOT_OK(slot.view->RunSearch(catalog, weights, slot.engine.get()));
  CommitSlot(&slot, base, weights);
  return util::Status::OK();
}

}  // namespace q::core
