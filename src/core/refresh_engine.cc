#include "core/refresh_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace q::core {
namespace {

// Slack margins for the gap comparison. The gap and the summed decrease
// are both float aggregates computed in different orders than a fresh
// enumeration would use, with error proportional to the *cost*
// magnitudes involved — not to the gap — so a relative margin alone
// would be vacuous for a tiny gap between large costs. The absolute
// margin (comfortably above double resummation error for the cost
// scales this system produces, cf. kMinEdgeCost) covers that; the
// relative one covers large-gap scales. Both only ever convert a
// would-be skip into a fall-through (the safe direction).
constexpr double kSlackRelMargin = 1e-9;
constexpr double kSlackAbsMargin = 1e-9;

}  // namespace

RelevanceDecision ClassifyDeltaRelevance(
    const steiner::RelevanceCertificate& cert,
    const std::vector<steiner::RepricedEdge>& repriced) {
  RelevanceDecision decision;
  for (const steiner::RepricedEdge& r : repriced) {
    if (std::binary_search(cert.edges.begin(), cert.edges.end(), r.edge)) {
      // The edge is in or adjacent to a returned tree (or read by the
      // ranked union): its movement can change tree costs, the
      // enumeration's choices, or column folding. No safety argument.
      decision.touched_certificate = true;
      return decision;
    }
    if (r.new_cost < r.old_cost) {
      decision.net_decrease += r.old_cost - r.new_cost;
    }
  }
  // Pure increases outside the neighborhood are always safe: returned
  // trees keep bitwise-identical costs and every non-returned tree only
  // gets more expensive. Decreases are safe while their total stays
  // strictly inside the slack — any non-returned tree still costs more
  // than the k-th returned one, so the top-k set, order, and costs are
  // unchanged. Exactly-on-the-boundary (and within the float margin)
  // falls through: a tie at the k-th cost could re-rank under the
  // deterministic tie-break.
  decision.skip =
      decision.net_decrease == 0.0 ||
      decision.net_decrease + kSlackAbsMargin <
          cert.gap * (1.0 - kSlackRelMargin);
  return decision;
}

StructuralDecision ClassifyStructuralRelevance(
    const steiner::RelevanceCertificate& cert,
    const std::vector<graph::NodeId>& attachments, double net_decrease) {
  StructuralDecision decision;
  if (attachments.empty()) {
    // New topology nowhere touches the old graph (an isolated new
    // source): no tree over old terminals can use it at any cost.
    decision.skip = true;
    return decision;
  }
  if (!std::isfinite(cert.kth_cost)) {
    // Fewer than k answers: any reachable new tree could enter the
    // top-k, so nothing with attachments may skip.
    decision.attachment_reachable = true;
    return decision;
  }
  // A tree using new topology costs at least the baseline anchor
  // distance of some attachment; concurrent weight decreases outside the
  // certificate can shrink that distance by at most net_decrease, and
  // (because they are outside the certificate) provably leave the k-th
  // returned cost unchanged. Same margins, same safe direction, and the
  // same strict inequality as the weight gate: an attachment landing
  // exactly on the threshold falls through.
  const double threshold = cert.kth_cost + net_decrease;
  for (graph::NodeId a : attachments) {
    auto it =
        std::lower_bound(cert.alpha_nodes.begin(), cert.alpha_nodes.end(), a);
    const double dist =
        (it != cert.alpha_nodes.end() && *it == a)
            ? cert.alpha_dist[static_cast<std::size_t>(
                  it - cert.alpha_nodes.begin())]
            : cert.alpha_radius;
    if (!(threshold + kSlackAbsMargin < dist * (1.0 - kSlackRelMargin))) {
      decision.attachment_reachable = true;
      return decision;
    }
  }
  decision.skip = true;
  return decision;
}

std::size_t RefreshEngine::RegisterView(query::TopKView* view) {
  Slot slot;
  slot.view = view;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void RefreshEngine::UnregisterLastView() {
  if (!slots_.empty()) slots_.pop_back();
}

void RefreshEngine::ObserveRevisions(const graph::SearchGraph& base,
                                     const graph::WeightVector& weights) {
  if (!observed_any_ || last_graph_revision_ != base.revision() ||
      last_weight_revision_ != weights.revision()) {
    if (observed_any_) ++generation_;
    observed_any_ = true;
    last_graph_revision_ = base.revision();
    last_weight_revision_ = weights.revision();
  }
}

void RefreshEngine::MergeStats(const RefreshEngineStats& delta) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.snapshots_built += delta.snapshots_built;
  stats_.snapshots_recosted += delta.snapshots_recosted;
  stats_.refreshes_skipped += delta.refreshes_skipped;
  stats_.searches_run += delta.searches_run;
  stats_.views_skipped_delta += delta.views_skipped_delta;
  stats_.views_delta_recost += delta.views_delta_recost;
  stats_.views_full_recost += delta.views_full_recost;
  stats_.edges_repriced += delta.edges_repriced;
  stats_.views_skipped_irrelevant += delta.views_skipped_irrelevant;
  stats_.relevance_checks += delta.relevance_checks;
  stats_.relevance_fallthroughs += delta.relevance_fallthroughs;
  stats_.structural_edges_propagated += delta.structural_edges_propagated;
  stats_.sp_cache_entries_retained += delta.sp_cache_entries_retained;
  stats_.sp_cache_entries_dropped += delta.sp_cache_entries_dropped;
  stats_.structural_gate_checks += delta.structural_gate_checks;
  stats_.structural_gate_fallthroughs += delta.structural_gate_fallthroughs;
  stats_.views_skipped_structural += delta.views_skipped_structural;
}

RefreshEngine::GateOutcome RefreshEngine::RunRelevanceGate(
    Slot* slot, const graph::WeightVector& weights,
    const std::vector<graph::FeatureDelta>& deltas,
    RefreshEngineStats* stats) {
  query::TopKView& view = *slot->view;
  ++stats->relevance_checks;
  // Call-local: the gate runs concurrently from distinct slots' repair
  // tasks, so no engine-level scratch may back it.
  std::vector<steiner::RepricedEdge> preview;
  if (slot->engine->PreviewDelta(view.query_graph().graph, weights, deltas,
                                 &preview)) {
    if (preview.empty()) {
      // Nothing would move: identical to the delta-proven no-op skip, and
      // the snapshot is already reconciled.
      ++stats->views_skipped_delta;
      return GateOutcome::kNothingRepriced;
    }
    RelevanceDecision decision =
        ClassifyDeltaRelevance(view.certificate(), preview);
    if (decision.skip) {
      // Edges of this snapshot did move, but none the output depends on.
      ++stats->views_skipped_irrelevant;
      return GateOutcome::kSkip;
    }
    ++stats->relevance_fallthroughs;
  } else {
    // Dense delta: the preview declined (RecostDelta's threshold), so the
    // view falls through to the wholesale paths. Counted so
    // checks == skips + fallthroughs always holds.
    ++stats->relevance_fallthroughs;
  }
  return GateOutcome::kFallthrough;
}

util::Result<RefreshEngine::PrepareOutcome> RefreshEngine::PrepareSlot(
    Slot* slot, const graph::SearchGraph& base, const text::TextIndex* index,
    graph::CostModel* model, const graph::WeightVector& weights,
    bool allow_rebuild, bool run_gate, RefreshEngineStats* stats) {
  query::TopKView& view = *slot->view;
  const bool graph_moved = !slot->built ||
                           slot->graph_revision != base.revision();
  const bool weights_moved = !slot->built ||
                             slot->weight_revision != weights.revision();
  PrepareOutcome outcome;
  if (!graph_moved && !weights_moved && view.refreshed()) {
    return outcome;  // skip: nothing moved at all
  }

  // Whether a previous PrepareSlot mutated this snapshot without its
  // search succeeding. Mutations made *within this call* are fine for
  // the no-op skip (the proof is exactly that they moved no cost), but a
  // dirty slot's "nothing repriced" only means the failed attempt
  // already patched the snapshot — the view's results still predate it.
  const bool was_dirty = slot->dirty;

  // A finite association-cost threshold makes the query-graph topology a
  // function of the weights (edges are pruned by current cost), so only
  // the infinite-threshold default is eligible for any in-place path —
  // including structural edge propagation, which relies on the query
  // graph copying every base edge id-for-id.
  const bool weight_independent_topology =
      view.config().query_graph.association_cost_threshold ==
      std::numeric_limits<double>::infinity();

  // --- classify the structural delta ------------------------------------
  bool rebuild = !slot->built || !weight_independent_topology;
  // A prepared-but-unsearched slot: PrepareStructuralRepair (or an
  // earlier attempt whose search failed) already brought the cached
  // query graph and engine topology to this exact base revision, so only
  // reconciliation + search remain — work the async repair path can run.
  const bool already_prepared =
      !rebuild && slot->dirty &&
      slot->prepared_graph_revision == base.revision();
  std::vector<graph::EdgeId> mutated_edges;
  if ((rebuild || graph_moved) && !allow_rebuild && !already_prepared) {
    // Async repairs handle pure weight deltas only: a rebuild mutates the
    // shared feature space and a structural propagation mutates the
    // cached query graph other threads may be reading. The scheduler
    // routes these through the serial path instead.
    return util::Status::Internal(
        "view needs the serial refresh path (rebuild or structural delta)");
  }
  if (!rebuild && graph_moved && !already_prepared) {
    std::vector<graph::GraphDelta> graph_deltas;
    if (!base.DeltaSince(slot->graph_revision, &graph_deltas)) {
      rebuild = true;  // journal truncated: assume arbitrary change
    } else {
      for (const graph::GraphDelta& d : graph_deltas) {
        if (d.kind != graph::GraphDeltaKind::kEdgeMutated) {
          // Node/edge additions change what keyword matching can reach,
          // node mutations can change labels/values: re-expand.
          rebuild = true;
          break;
        }
        mutated_edges.push_back(d.id);
      }
    }
    if (!rebuild && !mutated_edges.empty()) {
      std::sort(mutated_edges.begin(), mutated_edges.end());
      mutated_edges.erase(
          std::unique(mutated_edges.begin(), mutated_edges.end()),
          mutated_edges.end());
      // In-place base-edge mutations: patch the cached query graph
      // instead of re-expanding it, then reprice exactly those edges
      // below. The mutated FeatureVecs make the snapshot's feature->edge
      // postings stale, so drop the index (rebuilt from the patched
      // graph on the next delta re-cost).
      if (view.PropagateBaseEdges(base, mutated_edges)) {
        stats->structural_edges_propagated += mutated_edges.size();
        slot->engine->InvalidateFeatureIndex();
        slot->dirty = true;
        slot->prepared_graph_revision = base.revision();
      } else {
        rebuild = true;
      }
    }
  }

  if (rebuild) {
    Q_RETURN_NOT_OK(view.RebuildQueryGraph(base, *index, model, weights));
    {
      // Rebuilds run under the caller's exclusive serving gate (no
      // SearchView in flight), but publish under serve_mu_ anyway so the
      // engine swap and its matching weight copy stay one atomic unit.
      std::lock_guard<std::mutex> lock(serve_mu_);
      slot->engine = std::make_unique<steiner::FastSteinerEngine>(
          view.query_graph().graph, weights,
          view.config().top_k.use_sp_cache);
      slot->serving_weights = SnapshotWeightsLocked(weights);
    }
    ++stats->snapshots_built;
    slot->dirty = true;
    slot->prepared_graph_revision = base.revision();
    outcome.run_search = true;
    return outcome;
  }

  // --- in-place reconciliation over unchanged topology -------------------
  // The cached query graph is now bit-identical to what a rebuild would
  // produce (same base revisions, same index, same features), so skipping
  // the rebuild cannot change the search's input; only the snapshot costs
  // may still be stale.
  std::vector<graph::FeatureDelta> weight_deltas;
  bool have_weight_deltas = true;
  if (weights_moved) {
    have_weight_deltas =
        weights.DeltaSince(slot->weight_revision, &weight_deltas);
    if (have_weight_deltas) graph::CoalesceFeatureDeltas(&weight_deltas);
  }

  // --- relevance gate (alpha-neighborhood gating) -------------------------
  // Before touching the snapshot at all, test whether the view's
  // certificate proves this delta cannot change its output. Eligibility:
  // a pure weight delta (no structural records — a mutated FeatureVec
  // invalidates the certificate's cost baseline in ways the preview
  // cannot see), a clean slot (a dirty one's snapshot no longer equals
  // the baseline the certificate's gap was computed against), and a
  // certificate stamped by the last search this engine committed (an
  // out-of-band refresh re-stamps it against foreign weights).
  if (run_gate && relevance_gating_ && have_weight_deltas && !slot->dirty &&
      mutated_edges.empty() && view.refreshed() &&
      view.certificate().valid &&
      view.certificate().serial == slot->certificate_serial) {
    switch (RunRelevanceGate(slot, weights, weight_deltas, stats)) {
      case GateOutcome::kNothingRepriced:
        // The snapshot is already reconciled, so commit the observed
        // revisions without a search.
        outcome.commit_without_search = true;
        return outcome;
      case GateOutcome::kSkip:
        // Skip without committing: the snapshot keeps its baseline
        // costs, and the next refresh replays the journals from the same
        // revisions (certificate staleness accumulates until a delta
        // touches the neighborhood or the journal truncates).
        return outcome;
      case GateOutcome::kFallthrough:
        break;
    }
  }

  if (have_weight_deltas) {
    steiner::FastSteinerEngine::RecostDeltaOutcome delta;
    {
      // Publish {repriced CSR, matching weight copy} atomically w.r.t.
      // concurrent SearchView captures. When nothing repriced, the CSR is
      // bitwise unchanged and the old serving pair stays valid.
      std::lock_guard<std::mutex> lock(serve_mu_);
      delta = slot->engine->RecostDelta(view.query_graph().graph, weights,
                                        weight_deltas, mutated_edges);
      if (delta.applied && delta.edges_repriced > 0) {
        slot->serving_weights = SnapshotWeightsLocked(weights);
      }
    }
    if (delta.applied) {
      stats->edges_repriced += delta.edges_repriced;
      stats->sp_cache_entries_retained += delta.cache_entries_retained;
      stats->sp_cache_entries_dropped += delta.cache_entries_dropped;
      if (delta.edges_repriced == 0 && !was_dirty) {
        // No edge of this view's snapshot moved: every downstream read
        // (tree search, compilation, ranked union) prices query-graph
        // edges, so the output is provably identical. Skip the search
        // but commit the reconciled revisions (clearing any dirty mark
        // this call set — its mutation is part of what is committed).
        // Forbidden when the slot entered dirty: a previous
        // failed-search attempt already patched the snapshot, so
        // "nothing repriced" does not mean the view's results match it.
        ++stats->views_skipped_delta;
        outcome.commit_without_search = true;
        return outcome;
      }
      if (delta.edges_repriced > 0) {
        ++stats->snapshots_recosted;
        ++stats->views_delta_recost;
        slot->dirty = true;
      }
      outcome.run_search = true;
      return outcome;
    }
  }

  // Weight journal truncated or the delta was dense: re-cost wholesale in
  // place (still no graph copy / text-index matching / CSR extraction).
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    slot->engine->Recost(view.query_graph().graph, weights);
    slot->serving_weights = SnapshotWeightsLocked(weights);
  }
  ++stats->snapshots_recosted;
  ++stats->views_full_recost;
  slot->dirty = true;
  outcome.run_search = true;
  return outcome;
}

void RefreshEngine::CommitSlot(Slot* slot, const graph::SearchGraph& base,
                               const graph::WeightVector& weights,
                               bool searched) {
  slot->graph_revision = base.revision();
  slot->weight_revision = weights.revision();
  // Conditional so steady-state commits don't write the flag at all:
  // SearchView reads `built` without a lock, which is safe because the
  // only false->true transition happens inside CreateView's exclusive
  // serving gate, before the slot id is ever published to readers.
  if (!slot->built) slot->built = true;
  slot->dirty = false;
  if (searched) slot->certificate_serial = slot->view->certificate().serial;
}

std::shared_ptr<const graph::WeightVector>
RefreshEngine::SnapshotWeightsLocked(const graph::WeightVector& weights) {
  if (serving_cache_ == nullptr ||
      serving_cache_revision_ != weights.revision()) {
    serving_cache_ = std::make_shared<const graph::WeightVector>(weights);
    serving_cache_revision_ = weights.revision();
  }
  return serving_cache_;
}

util::Result<query::ViewSnapshot> RefreshEngine::SearchView(
    std::size_t slot_id, const relational::Catalog& catalog) const {
  if (slot_id >= slots_.size()) {
    return util::Status::InvalidArgument("no such view slot");
  }
  const Slot& slot = slots_[slot_id];
  // `built` flips false->true exactly once, inside the caller's exclusive
  // serving gate (see CommitSlot); `view` and the engine pointer are only
  // replaced under that same gate, so the unlocked reads here are safe.
  if (!slot.built || slot.view == nullptr || slot.engine == nullptr) {
    return util::Status::InvalidArgument("view slot has no snapshot yet");
  }
  steiner::SnapshotPin pin;
  std::shared_ptr<const graph::WeightVector> weights;
  {
    // Atomic {pin, weights} capture: see serve_mu_. After this block the
    // search runs lock-free against the frozen pair — a concurrent repair
    // copies-on-write past the pin and publishes a new pair for later
    // readers without disturbing this one.
    std::lock_guard<std::mutex> lock(serve_mu_);
    pin = slot.engine->Pin();
    weights = slot.serving_weights;
  }
  if (weights == nullptr) {
    return util::Status::Internal("view slot has no serving weights");
  }
  return slot.view->BuildSearchSnapshot(catalog, *weights, slot.engine.get(),
                                        &pin);
}

util::Status RefreshEngine::RefreshAll(const graph::SearchGraph& base,
                                       const relational::Catalog& catalog,
                                       const text::TextIndex& index,
                                       graph::CostModel* model,
                                       const graph::WeightVector& weights) {
  ObserveRevisions(base, weights);

  // Phase 1 (serial, in registration order — feature interning follows
  // the same order as N independent refreshes would): reconcile every
  // snapshot with the current base state.
  RefreshEngineStats local;
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    auto prepared = PrepareSlot(&slots_[i], base, &index, model, weights,
                                /*allow_rebuild=*/true, /*run_gate=*/true,
                                &local);
    if (!prepared.ok()) {
      MergeStats(local);
      return prepared.status();
    }
    if (prepared->run_search) {
      pending.push_back(i);
    } else {
      ++local.refreshes_skipped;
      // A delta-proven no-op still reconciled the slot: commit so the
      // journals are not replayed (and the proof redone) next refresh.
      // (Relevance skips deliberately do NOT commit — see PrepareSlot.)
      if (prepared->commit_without_search) {
        CommitSlot(&slots_[i], base, weights, /*searched=*/false);
      }
    }
  }

  // Phase 2: fan the per-view searches out. Each task touches only its
  // own view plus read-only shared state (catalog, weights, its own
  // synchronized SP cache), and results land in per-view slots, so the
  // merge is deterministic regardless of scheduling.
  std::vector<util::Status> statuses(pending.size(), util::Status::OK());
  auto run_one = [&](std::size_t j) {
    Slot& slot = slots_[pending[j]];
    statuses[j] = slot.view->RunSearch(catalog, weights, slot.engine.get());
  };
  if (pool_ != nullptr && pending.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      tasks.push_back([&run_one, j] { run_one(j); });
    }
    pool_->RunAll(tasks);
  } else {
    for (std::size_t j = 0; j < pending.size(); ++j) run_one(j);
  }
  local.searches_run += pending.size();
  MergeStats(local);
  // Commit only the slots whose search succeeded; failed ones keep their
  // old revisions and are re-prepared (and re-searched) next refresh
  // instead of being skipped as up to date.
  for (std::size_t j = 0; j < pending.size(); ++j) {
    if (statuses[j].ok()) {
      CommitSlot(&slots_[pending[j]], base, weights, /*searched=*/true);
    }
  }
  for (const util::Status& status : statuses) {
    Q_RETURN_NOT_OK(status);
  }
  return util::Status::OK();
}

util::Status RefreshEngine::RefreshView(std::size_t slot_id,
                                        const graph::SearchGraph& base,
                                        const relational::Catalog& catalog,
                                        const text::TextIndex& index,
                                        graph::CostModel* model,
                                        const graph::WeightVector& weights) {
  if (slot_id >= slots_.size()) {
    return util::Status::InvalidArgument("no such view slot");
  }
  ObserveRevisions(base, weights);
  Slot& slot = slots_[slot_id];
  RefreshEngineStats local;
  auto prepared = PrepareSlot(&slot, base, &index, model, weights,
                              /*allow_rebuild=*/true, /*run_gate=*/true,
                              &local);
  if (!prepared.ok()) {
    MergeStats(local);
    return prepared.status();
  }
  if (!prepared->run_search) {
    ++local.refreshes_skipped;
    MergeStats(local);
    if (prepared->commit_without_search) {
      CommitSlot(&slot, base, weights, /*searched=*/false);
    }
    return util::Status::OK();
  }
  ++local.searches_run;
  MergeStats(local);
  Q_RETURN_NOT_OK(slot.view->RunSearch(catalog, weights, slot.engine.get()));
  CommitSlot(&slot, base, weights, /*searched=*/true);
  return util::Status::OK();
}

AsyncViewClass RefreshEngine::ClassifyViewForAsync(
    std::size_t slot_id, const graph::SearchGraph& base,
    const text::TextIndex& index, const graph::WeightVector& weights) {
  Slot& slot = slots_[slot_id];
  query::TopKView& view = *slot.view;
  RefreshEngineStats local;
  AsyncViewClass result;

  const bool weight_independent_topology =
      view.config().query_graph.association_cost_threshold ==
      std::numeric_limits<double>::infinity();
  const bool graph_moved = !slot.built ||
                           slot.graph_revision != base.revision();
  const bool weights_moved = !slot.built ||
                             slot.weight_revision != weights.revision();

  if (!slot.built || !weight_independent_topology) {
    // First-touch build, or topology that depends on the weights: every
    // reconcile re-expands the query graph.
    result = AsyncViewClass::kSerialOnly;
  } else if (!graph_moved && !weights_moved && view.refreshed()) {
    ++local.refreshes_skipped;
    result = AsyncViewClass::kUpToDate;
  } else if (graph_moved) {
    // Structural delta pending. The structural gate can prove a
    // registration irrelevant to this view (kSkippedIrrelevant, no
    // repair at all); everything else — including in-place edge
    // mutations, which patch the cached query graph the feedback thread
    // reads for MIRA updates — needs the serial path.
    result = ClassifyStructural(&slot, base, index, weights, &local);
  } else if (slot.dirty) {
    // A previous repair mutated the snapshot without its search landing;
    // the gate's baseline is gone, but the in-place repair path replays
    // the journals fine.
    result = AsyncViewClass::kRepair;
  } else {
    std::vector<graph::FeatureDelta> deltas;
    if (!weights.DeltaSince(slot.weight_revision, &deltas)) {
      result = AsyncViewClass::kRepair;  // truncated: repair re-costs fully
    } else {
      graph::CoalesceFeatureDeltas(&deltas);
      if (relevance_gating_ && view.refreshed() &&
          view.certificate().valid &&
          view.certificate().serial == slot.certificate_serial) {
        switch (RunRelevanceGate(&slot, weights, deltas, &local)) {
          case GateOutcome::kNothingRepriced:
            // Same rule as the serial paths: a delta-proven no-op commits
            // so the journals are not replayed next round.
            CommitSlot(&slot, base, weights, /*searched=*/false);
            ++local.refreshes_skipped;
            result = AsyncViewClass::kValidatedWithoutSearch;
            break;
          case GateOutcome::kSkip:
            // Lazy repair: no commit, staleness accumulates against the
            // same baseline (see PrepareSlot).
            ++local.refreshes_skipped;
            result = AsyncViewClass::kValidatedWithoutSearch;
            break;
          case GateOutcome::kFallthrough:
            result = AsyncViewClass::kRepair;
            break;
        }
      } else {
        result = AsyncViewClass::kRepair;
      }
    }
  }
  MergeStats(local);
  return result;
}

AsyncViewClass RefreshEngine::ClassifyStructural(
    Slot* slot, const graph::SearchGraph& base, const text::TextIndex& index,
    const graph::WeightVector& weights, RefreshEngineStats* stats) {
  query::TopKView& view = *slot->view;
  const steiner::RelevanceCertificate& cert = view.certificate();
  // Eligibility mirrors the weight gate: a clean, refreshed slot whose
  // certificate (a) is valid with the structural half populated and (b)
  // was stamped by the last search this engine committed. Ineligible
  // slots are not counted as gate checks.
  if (!relevance_gating_ || slot->dirty || !view.refreshed() || !cert.valid ||
      !cert.structural_valid || cert.serial != slot->certificate_serial) {
    return AsyncViewClass::kSerialOnly;
  }
  ++stats->structural_gate_checks;
  const auto fall_through = [stats] {
    ++stats->structural_gate_fallthroughs;
    return AsyncViewClass::kSerialOnly;
  };

  // --- decode the structural window --------------------------------------
  // Admissible records: node/edge additions, plus mutations of entities
  // added in the SAME window (AddAssociations re-features freshly added
  // association edges via ReconcileMissingMatcherFeatures; journal
  // records are chronological, so an admissible mutated id has already
  // been collected). Any mutation of a pre-existing node or edge can
  // change labels, value text, or certificate-baseline costs in ways
  // this gate cannot bound: fall through.
  std::vector<graph::GraphDelta> graph_deltas;
  if (!base.DeltaSince(slot->graph_revision, &graph_deltas)) {
    return fall_through();
  }
  std::vector<std::uint32_t> added_nodes;
  std::vector<std::uint32_t> added_edges;
  for (const graph::GraphDelta& d : graph_deltas) {
    switch (d.kind) {
      case graph::GraphDeltaKind::kNodeAdded:
        added_nodes.push_back(d.id);  // ids are assigned in order: sorted
        break;
      case graph::GraphDeltaKind::kEdgeAdded:
        added_edges.push_back(d.id);
        break;
      case graph::GraphDeltaKind::kNodeMutated:
        if (!std::binary_search(added_nodes.begin(), added_nodes.end(),
                                d.id)) {
          return fall_through();
        }
        break;
      case graph::GraphDeltaKind::kEdgeMutated:
        if (!std::binary_search(added_edges.begin(), added_edges.end(),
                                d.id)) {
          return fall_through();
        }
        break;
    }
  }

  // --- keyword-match fingerprint ------------------------------------------
  // TF-IDF is corpus-wide, so a registration can move existing match
  // scores (idf shifts with the document count) or admit new matches.
  // Exact equality proves a rebuilt query graph would be the old one
  // plus the new base nodes/edges only.
  if (query::KeywordMatchFingerprint(index, view.keywords(),
                                     view.config().query_graph) !=
      cert.keyword_fingerprint) {
    return fall_through();
  }

  // --- concurrent weight delta --------------------------------------------
  // Any weight movement since the slot's baseline must itself pass the
  // weight gate (so old trees and the k-th cost are provably unchanged);
  // its net decrease then widens the structural threshold below.
  double net_decrease = 0.0;
  if (slot->weight_revision != weights.revision()) {
    std::vector<graph::FeatureDelta> weight_deltas;
    if (!weights.DeltaSince(slot->weight_revision, &weight_deltas)) {
      return fall_through();
    }
    graph::CoalesceFeatureDeltas(&weight_deltas);
    std::vector<steiner::RepricedEdge> preview;
    if (!slot->engine->PreviewDelta(view.query_graph().graph, weights,
                                    weight_deltas, &preview)) {
      return fall_through();
    }
    RelevanceDecision weight_decision = ClassifyDeltaRelevance(cert, preview);
    if (!weight_decision.skip) return fall_through();
    net_decrease = weight_decision.net_decrease;
  }

  // --- attachment set -----------------------------------------------------
  // Old endpoints of new edges: where new topology meets the graph the
  // certificate describes. Base node ids are preserved id-for-id in the
  // cached query graph (infinite association threshold), so attachments
  // live in both id spaces.
  std::vector<graph::NodeId> attachments;
  for (std::uint32_t e : added_edges) {
    const graph::EdgeView edge = base.edge(e);
    if (!std::binary_search(added_nodes.begin(), added_nodes.end(), edge.u)) {
      attachments.push_back(edge.u);
    }
    if (!std::binary_search(added_nodes.begin(), added_nodes.end(), edge.v)) {
      attachments.push_back(edge.v);
    }
  }
  std::sort(attachments.begin(), attachments.end());
  attachments.erase(std::unique(attachments.begin(), attachments.end()),
                    attachments.end());

  // Contact check: a new edge incident to a node of the certificate
  // neighborhood can change the ranked union's column folding
  // (FindCompatibleColumn walks edges incident to select-list
  // attributes) without moving any cost, so distance alone is not a
  // safety argument there. Every neighborhood node has at least one old
  // incident edge in cert.edges, so intersecting each attachment's old
  // incident edges against the certificate detects contact exactly.
  const graph::SearchGraph& old_query_graph = view.query_graph().graph;
  for (graph::NodeId a : attachments) {
    if (a >= old_query_graph.num_nodes()) return fall_through();
    for (graph::EdgeId e : old_query_graph.edges_of(a)) {
      if (std::binary_search(cert.edges.begin(), cert.edges.end(), e)) {
        return fall_through();
      }
    }
  }

  StructuralDecision decision =
      ClassifyStructuralRelevance(cert, attachments, net_decrease);
  if (!decision.skip) return fall_through();
  // Lazy repair, like the weight gate's kSkip: no commit, the journals
  // replay from the same baseline until a delta defeats the certificate
  // (or the serial quiescence path rebuilds the slot).
  ++stats->views_skipped_structural;
  ++stats->refreshes_skipped;
  return AsyncViewClass::kSkippedIrrelevant;
}

util::Result<bool> RefreshEngine::PrepareStructuralRepair(
    std::size_t slot_id, const graph::SearchGraph& base,
    const text::TextIndex& index, graph::CostModel* model,
    const graph::WeightVector& weights) {
  if (slot_id >= slots_.size()) {
    return util::Status::InvalidArgument("no such view slot");
  }
  Slot& slot = slots_[slot_id];
  RefreshEngineStats local;
  auto prepared = PrepareSlot(&slot, base, &index, model, weights,
                              /*allow_rebuild=*/true, /*run_gate=*/true,
                              &local);
  if (!prepared.ok()) {
    MergeStats(local);
    return prepared.status();
  }
  if (!prepared->run_search) {
    ++local.refreshes_skipped;
    MergeStats(local);
    if (prepared->commit_without_search) {
      CommitSlot(&slot, base, weights, /*searched=*/false);
    }
    return false;
  }
  // The search itself is the caller's (asynchronous) half: the slot is
  // left dirty with prepared_graph_revision recorded, so RepairViewAsync
  // finishes it in place on the keyed task queue.
  MergeStats(local);
  return true;
}

util::Status RefreshEngine::RepairViewAsync(std::size_t slot_id,
                                            const graph::SearchGraph& base,
                                            const relational::Catalog& catalog,
                                            const graph::WeightVector& weights) {
  if (slot_id >= slots_.size()) {
    return util::Status::InvalidArgument("no such view slot");
  }
  Slot& slot = slots_[slot_id];
  RefreshEngineStats local;
  // run_gate=false: the scheduler's classification already ran the gate
  // for this delta and decided a repair is needed — re-previewing here
  // would duplicate the work and double-count the gate stats vs sync
  // mode. (Deltas accumulated since classification are simply repaired;
  // the queued search was unavoidable anyway.)
  auto prepared = PrepareSlot(&slot, base, /*index=*/nullptr,
                              /*model=*/nullptr, weights,
                              /*allow_rebuild=*/false, /*run_gate=*/false,
                              &local);
  if (!prepared.ok()) {
    MergeStats(local);
    return prepared.status();
  }
  if (!prepared->run_search) {
    ++local.refreshes_skipped;
    MergeStats(local);
    if (prepared->commit_without_search) {
      CommitSlot(&slot, base, weights, /*searched=*/false);
    }
    return util::Status::OK();
  }
  ++local.searches_run;
  MergeStats(local);
  Q_RETURN_NOT_OK(slot.view->RunSearch(catalog, weights, slot.engine.get()));
  CommitSlot(&slot, base, weights, /*searched=*/true);
  return util::Status::OK();
}

}  // namespace q::core
