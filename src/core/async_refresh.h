#ifndef Q_CORE_ASYNC_REFRESH_H_
#define Q_CORE_ASYNC_REFRESH_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/refresh_engine.h"
#include "graph/feature.h"
#include "graph/search_graph.h"
#include "query/view.h"
#include "relational/catalog.h"
#include "text/text_index.h"
#include "util/shared_mutex.h"
#include "util/status.h"
#include "util/task_queue.h"
#include "util/thread_pool.h"

namespace q::core {

// Counters for the async pipeline (see stats()).
struct AsyncRefreshStats {
  // NotifyBaseChanged calls — one per acknowledged feedback update.
  std::size_t feedback_rounds = 0;
  // Repair tasks submitted to the per-view queue (before coalescing).
  std::size_t repairs_scheduled = 0;
  // Repair bodies that actually executed.
  std::size_t repairs_run = 0;
  // Views validated at an epoch without a search (up to date, delta
  // no-op, or relevance-gated).
  std::size_t validations_without_search = 0;
  // Views routed through the serial path from NotifyBaseChanged (rebuild
  // or structural delta needed — quiesces the queue first).
  std::size_t serial_repairs = 0;
  // SyncBarrier calls (structural changes, explicit full refreshes).
  std::size_t sync_barriers = 0;
  // NotifyStructuralChange calls — one per acknowledged registration /
  // association batch.
  std::size_t structural_rounds = 0;
  // Views a structural certificate proved a registration could not
  // affect (kSkippedIrrelevant, from either notify path): validated at
  // the new epoch with no rebuild, no search, and no quiesce of their
  // serving state.
  std::size_t structural_skips = 0;
  // Views whose certificate failed a structural round: query graph +
  // snapshot rebuilt synchronously inside the ack (searches still run
  // async on the keyed queue).
  std::size_t structural_rebuilds = 0;
};

// Async view refresh behind the feedback loop (docs/query_engine.md,
// "Async refresh contract").
//
// The synchronous engine repairs every open view before a feedback call
// returns, so one user's correction stalls everyone's queries. This
// scheduler splits that work at the classification boundary the
// relevance gate already computes:
//
//   * NotifyBaseChanged (the ack path, caller's feedback thread): the
//     journals are already appended; every idle view is classified via
//     RefreshEngine::ClassifyViewForAsync — up-to-date and gate-proven
//     views are validated at the new epoch on the spot, affected views
//     get a repair task queued — and the call returns. Ack latency is
//     classification cost, not search cost.
//   * Repair tasks (pool threads, one per affected view): re-cost the
//     view's CSR snapshot and re-run its search against a frozen copy of
//     the weight vector (value- and journal-identical to the live vector
//     at the repair's target epoch), then publish the new ViewSnapshot
//     and mark the view validated. util::KeyedTaskQueue gives per-view
//     ordering (repairs of one view never overlap or reorder) and
//     coalesces superseded repairs (a pending repair is subsumed by a
//     newer one, since every repair reconciles to the latest state).
//   * Reads (any thread, never blocking): Read() returns the last
//     committed ViewSnapshot tagged with its staleness epoch; WaitFresh
//     optionally blocks until the view reflects every update committed
//     before the call.
//
// Determinism contract: at quiescence (Drain/SyncBarrier returned, no
// feedback in flight) every view's published output is bit-identical to
// what the synchronous engine would serve after the same sequence of
// base-state changes — repairs reuse the engine's delta classification
// machinery, whose classes are all output-identical by construction, and
// frozen weight copies equal the live vector at their revision. No
// intermediate read ever mixes generations: ViewSnapshot is published
// whole (query/view.h) and an in-flight search pins its CSR snapshot
// across concurrent re-costs (steiner/fast_solver.h).
//
// Threading contract for the owner (QSystem): all base-state mutation
// and every NotifyBaseChanged / SyncBarrier / TrackView call are
// serialized by one caller-held lock (the feedback lock); while any
// repair may be in flight, base state is immutable except the weight
// vector, which only the feedback thread mutates. Read / WaitFresh /
// Drain are safe from any thread at any time.
class AsyncRefreshScheduler {
 public:
  // `engine` must outlive the scheduler. `pool` runs the repair tasks;
  // when it is null or `dedicated_threads` > 0 the scheduler owns a pool
  // of max(1, dedicated_threads) workers instead. The base-state
  // pointers mirror RefreshEngine::RefreshAll's parameters; `model` and
  // `index` are needed only by the serial path.
  // `serve_gate` (optional) is the owner's reader/writer serving lock
  // (QSystem::serve_mu_): concurrent QueryView readers hold it shared,
  // and the scheduler takes it exclusively around the serial-repair
  // branch of NotifyBaseChanged — the one scheduler path that rebuilds
  // query graphs / replaces slot engines while readers could be in
  // flight. SyncBarrier deliberately does NOT take it: its QSystem
  // callers already hold the gate exclusively (it is not recursive).
  AsyncRefreshScheduler(RefreshEngine* engine, util::ThreadPool* pool,
                        int dedicated_threads,
                        const graph::SearchGraph* base,
                        const relational::Catalog* catalog,
                        const text::TextIndex* index,
                        graph::CostModel* model,
                        const graph::WeightVector* weights,
                        util::SharedMutex* serve_gate = nullptr);

  // Drains all in-flight repairs.
  ~AsyncRefreshScheduler();

  AsyncRefreshScheduler(const AsyncRefreshScheduler&) = delete;
  AsyncRefreshScheduler& operator=(const AsyncRefreshScheduler&) = delete;

  // Starts tracking engine slot `slot` (serving `view`), considered
  // freshly validated at the current epoch — callers register views
  // through the engine and refresh them before tracking. Quiescent
  // contexts only (CreateView quiesces first).
  void TrackView(std::size_t slot, query::TopKView* view);

  // The feedback ack: bumps the epoch, freezes the weight vector,
  // classifies every view, validates the unaffected ones, and queues
  // repairs for the rest. Views needing the serial path (rebuilds,
  // structural deltas) are repaired synchronously inside this call after
  // quiescing the queue — the normal feedback loop (pure weight deltas
  // over weight-independent topologies) never takes that branch.
  void NotifyBaseChanged();

  // The structural (onboarding) ack: like NotifyBaseChanged, but for
  // RegisterSource/AddAssociations batches that appended to the graph
  // journal. The caller (QSystem) must have quiesced the queue before
  // mutating the base and must NOT hold the serving gate. Every tracked
  // view is classified: views whose structural certificate proves the
  // registration irrelevant (kSkippedIrrelevant) are validated at the
  // new epoch untouched — no rebuild, no search, no quiesce of their
  // serving state; views whose certificate fails get their query graph
  // and CSR snapshot rebuilt synchronously here (under the exclusive
  // serving gate — the shared-feature-space mutation), with the searches
  // themselves running as ordinary repairs on the keyed task queue after
  // the call returns. Returns the first synchronous prepare failure
  // (also recorded sticky, like a failed async repair); async search
  // failures surface through Drain/SyncBarrier as usual.
  util::Status NotifyStructuralChange();

  // Epoch-tagged, never-blocking read of the view's last committed
  // output. The returned snapshot stays alive (and internally
  // consistent) for as long as the caller holds it.
  query::ViewResult Read(std::size_t slot) const;

  // Blocks until `slot` reflects every base-state change committed
  // before this call, or `timeout` elapses (false). Returns false
  // immediately if a repair failed (Drain/SyncBarrier surface the
  // status).
  bool WaitFresh(std::size_t slot, std::chrono::milliseconds timeout);

  // Quiesces the repair queue and returns the first repair failure since
  // the last successful SyncBarrier (views behind a failed repair stay
  // stale; SyncBarrier retries them synchronously).
  util::Status Drain();

  // Quiesce ignoring repair errors — for callers that only need the
  // no-tasks-in-flight guarantee (structural mutations).
  void Quiesce();

  // Quiesce + synchronous RefreshEngine::RefreshAll + validate all views
  // at a fresh epoch. The recovery and structural-change path: failed
  // async repairs are retried here because their slots never committed.
  util::Status SyncBarrier();

  // Current staleness epoch: one tick per NotifyBaseChanged/SyncBarrier.
  std::uint64_t epoch() const;

  AsyncRefreshStats stats() const;

 private:
  void RepairOne(std::size_t slot);

  RefreshEngine* engine_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  // when not sharing
  util::ThreadPool* pool_;                        // the pool repairs run on
  const graph::SearchGraph* base_;
  const relational::Catalog* catalog_;
  const text::TextIndex* index_;
  graph::CostModel* model_;
  const graph::WeightVector* weights_;
  util::SharedMutex* serve_gate_;  // may be null (no concurrent readers)

  // Declared after the pools so it drains before they join.
  util::KeyedTaskQueue queue_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
  // Frozen copy of *weights_ made at the latest epoch; repairs read it
  // instead of the live vector so they never race MIRA updates.
  std::shared_ptr<const graph::WeightVector> frozen_weights_;
  // Per-slot: the view served and the epoch its published output was
  // last validated at.
  std::vector<query::TopKView*> views_;
  std::vector<std::uint64_t> validated_;
  // First repair failure since the last successful SyncBarrier.
  util::Status repair_error_ = util::Status::OK();
  AsyncRefreshStats stats_;
};

}  // namespace q::core

#endif  // Q_CORE_ASYNC_REFRESH_H_
