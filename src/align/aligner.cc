#include "align/aligner.h"

#include <algorithm>
#include <unordered_map>

#include "util/timer.h"

namespace q::align {
namespace {

// Runs the base matcher between every table of the new source and the
// given existing relations (by graph node), aggregating stats.
util::Result<std::vector<match::AlignmentCandidate>> MatchAgainstRelations(
    const graph::SearchGraph& graph, const relational::Catalog& catalog,
    const relational::DataSource& new_source,
    const std::vector<graph::NodeId>& relations, int top_y,
    match::Matcher* matcher, AlignerStats* stats) {
  util::WallTimer timer;
  std::size_t comparisons_before = matcher->stats().attribute_comparisons;
  std::size_t calls_before = matcher->stats().pair_alignments;

  std::vector<match::AlignmentCandidate> all;
  for (graph::NodeId rel : relations) {
    const std::string& qualified = graph.node(rel).label;
    auto existing = catalog.FindTable(qualified);
    if (existing == nullptr) continue;
    // Skip the new source's own relations.
    if (existing->schema().source() == new_source.name()) continue;
    ++stats->relations_considered;
    for (const auto& incoming : new_source.tables()) {
      Q_ASSIGN_OR_RETURN(
          std::vector<match::AlignmentCandidate> candidates,
          matcher->AlignPair(*existing, *incoming, top_y));
      for (auto& c : candidates) all.push_back(std::move(c));
    }
  }
  stats->attribute_comparisons +=
      matcher->stats().attribute_comparisons - comparisons_before;
  stats->matcher_calls += matcher->stats().pair_alignments - calls_before;
  stats->wall_ms += timer.ElapsedMillis();
  return match::TopYPerAttribute(std::move(all), top_y);
}

std::vector<graph::NodeId> AllRelationNodes(const graph::SearchGraph& graph) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.node(n).kind == graph::NodeKind::kRelation) out.push_back(n);
  }
  return out;
}

}  // namespace

util::Result<std::vector<match::AlignmentCandidate>> ExhaustiveAligner::Align(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const relational::Catalog& catalog,
    const relational::DataSource& new_source, const AlignContext& context,
    match::Matcher* matcher, AlignerStats* stats) {
  (void)weights;
  return MatchAgainstRelations(graph, catalog, new_source,
                               AllRelationNodes(graph), context.top_y,
                               matcher, stats);
}

std::vector<graph::NodeId> ViewBasedAligner::CostNeighborhoodRelations(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const AlignContext& context) {
  // Thread-local scratch: the alpha-neighborhood is usually a tiny
  // fraction of the catalog, so resetting in O(reached) and walking only
  // reached nodes keeps repeated alignments allocation-free.
  thread_local graph::DistanceField field;
  graph.Dijkstra(context.keyword_seeds, weights, context.alpha, &field);
  std::vector<graph::NodeId> relations;
  for (graph::NodeId n : field.reached()) {
    auto rel = graph.OwningRelation(n);
    if (!rel.has_value()) continue;
    relations.push_back(*rel);
  }
  std::sort(relations.begin(), relations.end());
  relations.erase(std::unique(relations.begin(), relations.end()),
                  relations.end());
  return relations;
}

util::Result<std::vector<match::AlignmentCandidate>> ViewBasedAligner::Align(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const relational::Catalog& catalog,
    const relational::DataSource& new_source, const AlignContext& context,
    match::Matcher* matcher, AlignerStats* stats) {
  std::vector<graph::NodeId> relations =
      CostNeighborhoodRelations(graph, weights, context);
  return MatchAgainstRelations(graph, catalog, new_source, relations,
                               context.top_y, matcher, stats);
}

util::Result<std::vector<match::AlignmentCandidate>> PreferentialAligner::Align(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const relational::Catalog& catalog,
    const relational::DataSource& new_source, const AlignContext& context,
    match::Matcher* matcher, AlignerStats* stats) {
  (void)weights;
  std::unordered_map<graph::NodeId, double> prior;
  for (const auto& [node, p] : context.vertex_prior) prior[node] = p;
  std::vector<graph::NodeId> relations = AllRelationNodes(graph);
  std::stable_sort(relations.begin(), relations.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     auto ia = prior.find(a);
                     auto ib = prior.find(b);
                     double pa = ia == prior.end() ? 0.0 : ia->second;
                     double pb = ib == prior.end() ? 0.0 : ib->second;
                     return pa > pb;
                   });
  if (context.max_relations > 0 &&
      relations.size() > context.max_relations) {
    relations.resize(context.max_relations);
  }
  return MatchAgainstRelations(graph, catalog, new_source, relations,
                               context.top_y, matcher, stats);
}

}  // namespace q::align
