#ifndef Q_ALIGN_ALIGNER_H_
#define Q_ALIGN_ALIGNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/search_graph.h"
#include "match/matcher.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace q::align {

// Per-run accounting for the scalability experiments (Figs. 6-8).
struct AlignerStats {
  std::size_t attribute_comparisons = 0;
  std::size_t matcher_calls = 0;  // BASEMATCHER invocations (relation pairs)
  std::size_t relations_considered = 0;
  double wall_ms = 0.0;
};

// Context shared by the alignment-search strategies.
struct AlignContext {
  // The live view's keyword anchors: (node, initial cost) seeds for the
  // alpha-neighborhood. Each keyword contributes its match edges' costs as
  // seed distances (the keyword nodes themselves live in query graphs, not
  // the search graph).
  std::vector<std::pair<graph::NodeId, double>> keyword_seeds;
  // Cost of the k-th best answer of the view (Algorithm 2's alpha).
  double alpha = 0.0;
  // Vertex prior for PreferentialAligner (higher = try earlier). Missing
  // relations default to 0.
  std::vector<std::pair<graph::NodeId, double>> vertex_prior;
  // PreferentialAligner budget: stop after this many existing relations
  // (0 = all, which degenerates to exhaustive order).
  std::size_t max_relations = 0;
  // Candidates requested per attribute.
  int top_y = 2;
};

// Strategy interface (Sec. 3.3): decide which existing relations the new
// source must be matched against, and run the base matcher on those.
class Aligner {
 public:
  virtual ~Aligner() = default;
  virtual std::string_view name() const = 0;

  // Aligns every table of `new_source` against the selected existing
  // relations of `graph`/`catalog`. Returns candidate associations; fills
  // `stats`.
  virtual util::Result<std::vector<match::AlignmentCandidate>> Align(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const relational::Catalog& catalog,
      const relational::DataSource& new_source, const AlignContext& context,
      match::Matcher* matcher, AlignerStats* stats) = 0;
};

// EXHAUSTIVE (Sec. 3.3): every existing relation.
class ExhaustiveAligner final : public Aligner {
 public:
  std::string_view name() const override { return "exhaustive"; }
  util::Result<std::vector<match::AlignmentCandidate>> Align(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const relational::Catalog& catalog,
      const relational::DataSource& new_source, const AlignContext& context,
      match::Matcher* matcher, AlignerStats* stats) override;
};

// VIEWBASEDALIGNER (Algorithm 2): only relations inside the alpha-cost
// neighborhood of the view's keywords. Guaranteed to produce the same
// top-k view updates as EXHAUSTIVE (non-negative edge costs).
class ViewBasedAligner final : public Aligner {
 public:
  std::string_view name() const override { return "view_based"; }
  util::Result<std::vector<match::AlignmentCandidate>> Align(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const relational::Catalog& catalog,
      const relational::DataSource& new_source, const AlignContext& context,
      match::Matcher* matcher, AlignerStats* stats) override;

  // The relations inside the alpha neighborhood (exposed for tests).
  static std::vector<graph::NodeId> CostNeighborhoodRelations(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const AlignContext& context);
};

// PREFERENTIALALIGNER (Algorithm 3): existing relations in prior order,
// up to the context's budget.
class PreferentialAligner final : public Aligner {
 public:
  std::string_view name() const override { return "preferential"; }
  util::Result<std::vector<match::AlignmentCandidate>> Align(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const relational::Catalog& catalog,
      const relational::DataSource& new_source, const AlignContext& context,
      match::Matcher* matcher, AlignerStats* stats) override;
};

}  // namespace q::align

#endif  // Q_ALIGN_ALIGNER_H_
