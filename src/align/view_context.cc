#include "align/view_context.h"

#include <optional>

namespace q::align {

AlignContext ContextFromView(const query::TopKView& view,
                             const graph::SearchGraph& search_graph,
                             const graph::FeatureSpace& space,
                             const graph::WeightVector& weights, int top_y,
                             std::size_t preferential_budget) {
  AlignContext ctx;
  ctx.alpha = view.Alpha();
  ctx.top_y = top_y;
  ctx.max_relations = preferential_budget;

  const query::QueryGraph& qg = view.query_graph();
  for (graph::NodeId kw : qg.keyword_nodes) {
    for (graph::EdgeId eid : qg.graph.edges_of(kw)) {
      const graph::EdgeView e = qg.graph.edge(eid);
      if (e.kind != graph::EdgeKind::kKeywordMatch) continue;
      double cost = qg.graph.EdgeCost(eid, weights);
      const graph::Node& target = qg.graph.node(e.Other(kw));
      std::optional<graph::NodeId> seed;
      switch (target.kind) {
        case graph::NodeKind::kRelation:
          seed = search_graph.FindRelationNode(target.label);
          break;
        case graph::NodeKind::kAttribute:
        case graph::NodeKind::kValue:
          seed = search_graph.FindAttributeNode(target.attr);
          break;
        case graph::NodeKind::kKeyword:
          break;
      }
      if (seed.has_value()) ctx.keyword_seeds.emplace_back(*seed, cost);
    }
  }

  for (graph::NodeId n = 0; n < search_graph.num_nodes(); ++n) {
    if (search_graph.node(n).kind != graph::NodeKind::kRelation) continue;
    graph::FeatureId fid;
    std::string feature_name = "rel:" + search_graph.node(n).label;
    if (space.Find(feature_name, &fid)) {
      ctx.vertex_prior.emplace_back(n, -weights.At(fid));
    }
  }
  return ctx;
}

}  // namespace q::align
