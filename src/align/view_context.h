#ifndef Q_ALIGN_VIEW_CONTEXT_H_
#define Q_ALIGN_VIEW_CONTEXT_H_

#include "align/aligner.h"
#include "query/view.h"

namespace q::align {

// Derives the alignment context of a live view (Sec. 3.3): alpha is the
// cost of the view's k-th best answer; the keyword seeds are the view's
// keyword-match edges mapped back onto search-graph nodes, with the match
// cost as initial distance (value nodes map to their owning attribute —
// the membership hop is free, so distances are identical). The vertex
// prior is read off the learned per-relation authoritativeness weights.
AlignContext ContextFromView(const query::TopKView& view,
                             const graph::SearchGraph& search_graph,
                             const graph::FeatureSpace& space,
                             const graph::WeightVector& weights, int top_y,
                             std::size_t preferential_budget);

}  // namespace q::align

#endif  // Q_ALIGN_VIEW_CONTEXT_H_
